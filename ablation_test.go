package indra

import "testing"

var ablOpts = ExpOptions{Requests: 4}

func TestAblationLineSize(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is not short")
	}
	r, err := AblationLineSize(ablOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatal("sweep too small")
	}
	// Page-granularity must copy far more bytes than line granularity.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.LineBytes != 32 || last.LineBytes != 4096 {
		t.Fatalf("sweep endpoints %d..%d", first.LineBytes, last.LineBytes)
	}
	if last.BackupBytes <= first.BackupBytes*2 {
		t.Fatalf("page-granularity should move much more data: %d vs %d",
			last.BackupBytes, first.BackupBytes)
	}
	if r.Format() == "" {
		t.Fatal("format")
	}
}

func TestAblationCAM(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is not short")
	}
	r, err := AblationCAM(ablOpts)
	if err != nil {
		t.Fatal(err)
	}
	// No filter: every IL1 fill reaches the monitor.
	if r.Rows[0].Entries != 0 || r.Rows[0].RemainPct < 99.9 {
		t.Fatalf("no-filter row %+v", r.Rows[0])
	}
	// Remaining checks must be non-increasing with size.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].RemainPct > r.Rows[i-1].RemainPct+0.01 {
			t.Fatalf("filter not monotone: %+v -> %+v", r.Rows[i-1], r.Rows[i])
		}
	}
	// Even a small CAM removes the vast majority of checks.
	if r.Rows[1].RemainPct > 20 {
		t.Fatalf("8-entry CAM too weak: %.2f%%", r.Rows[1].RemainPct)
	}
}

func TestAblationMonitorSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is not short")
	}
	r, err := AblationMonitorSpeed(ablOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Overhead must grow with monitor cost, with a saturation cliff
	// once the monitor becomes the bottleneck.
	n := len(r.Rows)
	if r.Rows[0].OverheadPct > r.Rows[n-1].OverheadPct {
		t.Fatalf("overhead not increasing: %+v", r.Rows)
	}
	if r.Rows[n-1].OverheadPct < 50 {
		t.Fatalf("4x monitor cost should saturate the core: %.2f%%", r.Rows[n-1].OverheadPct)
	}
}

func TestAblationRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is not short")
	}
	r, err := AblationRollback(ablOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's recovery-on-demand design must not lose to eager
	// restoration, and should restore no more lines than eager does.
	if r.DeferredCycles > r.EagerCycles {
		t.Fatalf("deferred (%d cyc) slower than eager (%d cyc)", r.DeferredCycles, r.EagerCycles)
	}
	if r.DeferredOps > r.EagerOps {
		t.Fatalf("deferred restored more lines (%d) than eager (%d)", r.DeferredOps, r.EagerOps)
	}
}

func TestAblationSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is not short")
	}
	r, err := AblationSpace(ablOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatal("row count")
	}
	for _, row := range r.Rows {
		// The paper: backup space overhead is small relative to system
		// memory — here, a small fraction of the mapped footprint.
		if row.OverheadPct > 50 {
			t.Errorf("%s: backup space %.1f%% of mapped pages", row.Service, row.OverheadPct)
		}
		if row.TrackedPages == 0 {
			t.Errorf("%s: no backup pages at all", row.Service)
		}
	}
}

func TestAblationResurrectors(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is not short")
	}
	r, err := AblationResurrectors(ablOpts)
	if err != nil {
		t.Fatal(err)
	}
	// With a deliberately slow monitor, a second resurrector must
	// relieve the bottleneck measurably.
	if float64(r.OneResCycles) < float64(r.TwoResCycles)*1.1 {
		t.Fatalf("second resurrector gained too little: %d vs %d cycles",
			r.OneResCycles, r.TwoResCycles)
	}
}

func TestAvailabilityVsReboot(t *testing.T) {
	if testing.Short() {
		t.Skip("availability run is not short")
	}
	r, err := Availability(ExpOptions{Requests: 6})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AvailabilityRow{}
	for _, row := range r.Rows {
		byName[row.Strategy] = row
	}
	indra := byName["indra-micro"]
	reboot := byName["reboot"]
	// The paper's motivating claim, quantified: under recurring
	// exploits INDRA serves every legitimate client; restart-based
	// recovery loses requests and takes far longer.
	if indra.Availability != 1.0 {
		t.Fatalf("INDRA availability %.0f%%", indra.Availability*100)
	}
	if reboot.Availability > 0.9 {
		t.Fatalf("reboot availability %.0f%% — baseline should lose clients", reboot.Availability*100)
	}
	if reboot.TotalCycles < indra.TotalCycles*2 {
		t.Fatalf("reboot (%d cyc) should be far slower than INDRA (%d cyc)",
			reboot.TotalCycles, indra.TotalCycles)
	}
	if r.Format() == "" {
		t.Fatal("format")
	}
}

func TestDetectionLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency run is not short")
	}
	r, err := DetectionLatency(ExpOptions{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Cycles == 0 {
			t.Errorf("%s: zero latency", row.Attack)
		}
		// Control-flow exploits are contained within a tiny fraction of
		// a request; only the hang waits for the liveness budget.
		if string(row.Attack) != "dos-hang" && row.ShareOfRequest > 0.2 {
			t.Errorf("%s: containment took %.2fx of a request", row.Attack, row.ShareOfRequest)
		}
	}
}

func TestAblationBPred(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is not short")
	}
	r, err := AblationBPred(ablOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].Entries != 0 {
		t.Fatal("baseline row missing")
	}
	// Any bimodal table must beat the fixed bubble on CPI and achieve
	// high accuracy on loop-heavy server code.
	base := r.Rows[0].CPI
	for _, row := range r.Rows[1:] {
		if row.CPI >= base {
			t.Errorf("%d entries: CPI %.2f not better than disabled %.2f", row.Entries, row.CPI, base)
		}
		if row.AccuracyPct < 90 {
			t.Errorf("%d entries: accuracy %.1f%%", row.Entries, row.AccuracyPct)
		}
	}
}
