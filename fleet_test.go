package indra

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fleetRowByName finds one campaign x policy row.
func fleetRowByName(t *testing.T, r *FleetResult, campaign, policy string) FleetRow {
	t.Helper()
	for _, row := range r.Rows {
		if row.Campaign == campaign && row.Policy == policy {
			return row
		}
	}
	t.Fatalf("no %s/%s row in %d rows", campaign, policy, len(r.Rows))
	return FleetRow{}
}

// dumpFleetSnapshots replays one cell at the given worker count and
// writes every node's chip snapshot into dir — the offline-replay
// artifact CI uploads when the fleet golden diverges.
func dumpFleetSnapshots(t *testing.T, o ExpOptions, campaign, policy string, dir string) {
	t.Helper()
	f, _, err := FleetCell(o, campaign, policy)
	if err != nil {
		t.Errorf("artifact replay %s/%s: %v", campaign, policy, err)
		return
	}
	if _, err := f.Run(); err != nil {
		t.Errorf("artifact replay %s/%s: %v", campaign, policy, err)
		return
	}
	for i := 0; i < f.NodeCount(); i++ {
		name := fmt.Sprintf("%s-%s-w%d-node%d.snap", campaign, policy, o.Workers, i)
		if err := os.WriteFile(filepath.Join(dir, name), f.NodeSnapshot(i), 0o644); err != nil {
			t.Errorf("artifact write: %v", err)
			return
		}
	}
	t.Logf("wrote %d node snapshots for %s/%s (workers=%d) to %s", f.NodeCount(), campaign, policy, o.Workers, dir)
}

// The fleet experiment's core claims, held on one pair of runs:
// byte-identical output at 1 and 8 workers, the worm's re-infection
// exposure strictly reduced by rejuvenation and TMR over the reactive
// baseline, TMR actually ejecting dissenters, and rejuvenation reboots
// hitting the warm-boot cache after the first cycle. On a determinism
// failure, every cell's node snapshots are dumped for offline replay
// (FLEET_ARTIFACT_DIR overrides the destination).
func TestFleetResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is not short")
	}
	serialOpts := goldenOpts
	serialOpts.Workers = 1
	serial, err := Fleet(serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := goldenOpts
	parOpts.Workers = 8
	par, err := Fleet(parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Format() != par.Format() {
		dir := os.Getenv("FLEET_ARTIFACT_DIR")
		if dir == "" {
			dir = t.TempDir()
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, row := range serial.Rows {
			dumpFleetSnapshots(t, serialOpts, row.Campaign, row.Policy, dir)
			dumpFleetSnapshots(t, parOpts, row.Campaign, row.Policy, dir)
		}
		t.Fatalf("fleet output diverges across worker counts (node snapshots in %s)\n--- Workers: 1 ---\n%s--- Workers: 8 ---\n%s",
			dir, serial.Format(), par.Format())
	}

	reactive := fleetRowByName(t, par, "worm", "reactive").Res
	rejuv := fleetRowByName(t, par, "worm", "rejuvenation").Res
	tmr := fleetRowByName(t, par, "worm", "tmr").Res
	if reactive.Infections == 0 {
		t.Fatal("worm never landed on the reactive fleet")
	}
	// The tentpole claim: policies that actually clean latent
	// compromise strictly reduce re-infection exposure.
	if rejuv.ReinfectedRounds >= reactive.ReinfectedRounds {
		t.Errorf("rejuvenation re-infected rounds %d not below reactive %d",
			rejuv.ReinfectedRounds, reactive.ReinfectedRounds)
	}
	if tmr.ReinfectedRounds >= reactive.ReinfectedRounds {
		t.Errorf("tmr re-infected rounds %d not below reactive %d",
			tmr.ReinfectedRounds, reactive.ReinfectedRounds)
	}
	if tmr.Ejections == 0 {
		t.Error("tmr never ejected a dissenter under the worm")
	}
	if reactive.Recoveries != 0 {
		t.Errorf("reactive took %d policy recoveries, want 0", reactive.Recoveries)
	}

	// Rejuvenation's reboots must ride the warm-boot cache: the worm
	// arms no per-node faults, so the whole fleet is one platform — one
	// cold boot, then every node stamp and every reboot a hit.
	warm := fleetRowByName(t, par, "worm", "rejuvenation").Warm
	if warm.Misses != 1 || warm.Fallbacks != 0 {
		t.Errorf("rejuvenation warm stats %+v, want exactly 1 miss, 0 fallbacks", warm)
	}
	wantHits := uint64(serial.Nodes-1) + uint64(rejuv.Recoveries)
	if warm.Hits != wantHits {
		t.Errorf("rejuvenation warm hits = %d, want %d (node stamps + reboots)", warm.Hits, wantHits)
	}
}

// The policy and cluster-size axes must thread through from options to
// result, and unknown policies must be rejected.
func TestFleetPolicyAndNodesAxes(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation is not short")
	}
	o := ExpOptions{Requests: 1, Scale: 1.0, Seed: 1, Workers: 8, FleetPolicy: "tmr", FleetNodes: 5}
	res, err := Fleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(FleetCampaigns) {
		t.Fatalf("%d rows for a single-policy run, want %d", len(res.Rows), len(FleetCampaigns))
	}
	for _, row := range res.Rows {
		if row.Policy != "tmr" {
			t.Errorf("row %s ran policy %q, want tmr", row.Campaign, row.Policy)
		}
		if row.Res.Nodes != 5 {
			t.Errorf("row %s ran %d nodes, want 5", row.Campaign, row.Res.Nodes)
		}
	}
	if _, err := Fleet(ExpOptions{FleetPolicy: "optimistic"}); err == nil {
		t.Error("Fleet accepted an unknown policy")
	}
	if _, err := Fleet(ExpOptions{FleetNodes: 65}); err == nil {
		t.Error("Fleet accepted an out-of-range node count")
	}
}
