package indra

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"indra/internal/chip"
	"indra/internal/snapshot"
)

// Resumer makes long experiment runs crash-resumable. Installed as an
// ExpOptions.RunLoop, it segments every service run at a fixed
// instruction cadence and persists a progress file (accumulated
// instruction count + chip snapshot) after each segment. A run killed
// mid-flight — OOM, SIGKILL, power loss — restarts from its last
// progress file instead of instruction zero; a run that completes
// removes its file.
//
// Identity needs no registry: a run is keyed by the hash of its
// post-boot chip snapshot. Boot is deterministic, so the same cell's
// same run hashes identically across process restarts, and any change
// to the platform, program or request stream changes the key (a stale
// progress file is simply never matched again).
//
// Resumed output is byte-identical to an uninterrupted run: the resume
// equivalence harness holds that segmenting through Save/Load preserves
// every golden, and the progress file carries the instruction count
// executed before the crash so summed results match too.
//
// Safe for concurrent use (parallel experiment cells share one
// Resumer; distinct runs write distinct files).
type Resumer struct {
	// Dir receives the progress files (must exist).
	Dir string
	// Every is the snapshot cadence in executed instructions
	// (0 selects 2,000,000 — roughly thirty progress files per second
	// of simulator wall-clock).
	Every uint64

	resumed atomic.Uint64
	saved   atomic.Uint64
}

// ResumerStats counts the resumer's activity.
type ResumerStats struct {
	Resumed uint64 // runs continued from a progress file
	Saved   uint64 // progress snapshots written
}

// Stats snapshots the counters.
func (r *Resumer) Stats() ResumerStats {
	return ResumerStats{Resumed: r.resumed.Load(), Saved: r.saved.Load()}
}

// resumeMagic versions the progress-file envelope: magic, executed
// instruction count, then the chip snapshot (internal/snapshot format,
// which carries its own version gate).
const resumeMagic = "INDRRES1"

// RunLoop is the ExpOptions.RunLoop implementation.
func (r *Resumer) RunLoop(ch *chip.Chip, maxInstr uint64) (*chip.Chip, chip.RunResult, error) {
	if maxInstr == 0 {
		maxInstr = 1 << 62
	}
	every := r.Every
	if every == 0 {
		every = 2_000_000
	}

	entry := snapshot.Save(ch)
	sum := sha256.Sum256(entry)
	path := filepath.Join(r.Dir, fmt.Sprintf("%x.resume", sum[:12]))

	var total chip.RunResult
	var ran uint64
	if blob, err := os.ReadFile(path); err == nil {
		if prior, restored, err := decodeResume(blob); err == nil {
			ch, ran = restored, prior
			total.Instret = prior
			r.resumed.Add(1)
		}
		// An undecodable progress file (torn write, version skew) is not
		// an error: the freshly booted chip is already in hand, so the
		// run restarts from zero and overwrites the file.
	}

	for {
		if ran >= maxInstr {
			return ch, total, chip.ErrInstrLimit
		}
		step := every
		if step > maxInstr-ran {
			step = maxInstr - ran
		}
		res, err := ch.Run(step)
		total.Instret += res.Instret
		total.Cycles, total.Violations, total.Halted = res.Cycles, res.Violations, res.Halted
		ran += res.Instret
		if err == nil { // every service halted: run complete
			os.Remove(path)
			return ch, total, nil
		}
		if !errors.Is(err, chip.ErrInstrLimit) {
			return ch, total, err
		}
		if werr := writeResume(path, ran, snapshot.Save(ch)); werr != nil {
			return ch, total, fmt.Errorf("indra: resume progress: %w", werr)
		}
		r.saved.Add(1)
		if ran >= maxInstr {
			return ch, total, err // genuine instruction-budget exhaustion
		}
	}
}

// writeResume persists atomically (tmp + rename): a crash mid-write
// leaves the previous progress file intact, never a torn one.
func writeResume(path string, ran uint64, blob []byte) error {
	buf := make([]byte, 0, len(resumeMagic)+8+len(blob))
	buf = append(buf, resumeMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, ran)
	buf = append(buf, blob...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func decodeResume(blob []byte) (ran uint64, ch *chip.Chip, err error) {
	if len(blob) < len(resumeMagic)+8 || string(blob[:len(resumeMagic)]) != resumeMagic {
		return 0, nil, errors.New("indra: not a resume progress file")
	}
	ran = binary.LittleEndian.Uint64(blob[len(resumeMagic):])
	ch, err = snapshot.Load(blob[len(resumeMagic)+8:])
	return ran, ch, err
}
