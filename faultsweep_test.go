package indra

import (
	"testing"

	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/workload"
)

// runSweepLikeCell mirrors one FaultSweep cell's chip construction and
// stream, with the caller controlling the protection config.
func runSweepLikeCell(t *testing.T, service string, o ExpOptions, shape func(*chip.Config)) (*chip.Chip, *netsim.Port, chip.RunResult) {
	t.Helper()
	params := workload.MustByName(service)
	prog, err := params.BuildProgram()
	if err != nil {
		t.Fatal(err)
	}
	stream := params.GenRequests(o.Requests, o.Seed)
	for _, class := range AttackClasses {
		seq, err := attack.Sequence(class, prog)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, seq...)
	}
	cfg := chip.DefaultConfig()
	if shape != nil {
		shape(&cfg)
	}
	ch, err := chip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	port := netsim.NewPort(stream)
	if _, err := ch.LaunchService(0, service, prog, port); err != nil {
		t.Fatal(err)
	}
	res, err := ch.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return ch, port, res
}

// TestFaultSweepZeroRateMatchesUnarmed is the sweep's control-column
// guarantee: a cell with every site armed at rate 0 (plus the armed
// heartbeat) is cycle-for-cycle identical to a chip with no fault
// injection at all.
func TestFaultSweepZeroRateMatchesUnarmed(t *testing.T) {
	if testing.Short() {
		t.Skip("full cell runs are not short")
	}
	o := ExpOptions{Requests: 3, Scale: 1.0, Seed: 1}.fill()
	for _, service := range []string{"httpd", "bind"} {
		_, armedPort, armedRes := runSweepLikeCell(t, service, o, func(cfg *chip.Config) {
			cfg.Faults = faultSweepPlans(0, 7)
			cfg.HeartbeatInterval = faultSweepHeartbeat
		})
		_, barePort, bareRes := runSweepLikeCell(t, service, o, nil)
		if armedRes != bareRes {
			t.Fatalf("%s: rate-0 injection changed the run: %+v vs %+v", service, armedRes, bareRes)
		}
		if armedPort.Summarize() != barePort.Summarize() {
			t.Fatalf("%s: rate-0 injection changed outcomes: %+v vs %+v",
				service, armedPort.Summarize(), barePort.Summarize())
		}
	}
}

// TestFaultSweepCoverageFloor is the acceptance bar: at the sweep's
// nonzero rates every code-attack class must still be stopped for every
// service — protection-layer faults may cost availability, never
// detection of these exploits at these rates.
func TestFaultSweepCoverageFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is not short")
	}
	res, err := FaultSweep(ExpOptions{Requests: 3, Scale: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workload.Names()) * len(FaultSweepRates); len(res.Rows) != want {
		t.Fatalf("rows %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row.AttacksStopped != len(AttackClasses) {
			t.Errorf("%s @ %g: only %d/%d attacks stopped",
				row.Service, row.Rate, row.AttacksStopped, len(AttackClasses))
		}
		if row.Rate == 0 {
			if row.InjectedFaults != 0 || row.Availability != 1 {
				t.Errorf("%s control row not clean: %+v", row.Service, row)
			}
		}
	}
}
