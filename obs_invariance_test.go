package indra

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indra/internal/chip"
	"indra/internal/faultinject"
	"indra/internal/netsim"
	"indra/internal/obs"
	"indra/internal/workload"
)

// Observability lock-down tests: arming the obs layer must never
// perturb the simulation (golden invariance), and what it records must
// itself be deterministic (same bytes at any worker count, same trace
// across identical runs) and visible mid-run (-metrics-every, the
// protection counters).

// TestGoldenObsInvariance runs every golden experiment with a real
// sink armed — one registry per cell, probes sampled at end of run —
// and asserts the experiment output is byte-identical to the committed
// goldens. Observation reads the simulation; it must never write it.
func TestGoldenObsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	suite := obs.NewSuite()
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := goldenOpts
			opts.Workers = 8
			opts.Obs = suite
			got, err := tc.run(opts)
			if err != nil {
				t.Fatalf("observed run: %v", err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("armed observation changed the output vs %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
	if suite.Len() == 0 {
		t.Fatal("no experiment cell registered with the suite")
	}
	merged := suite.Merged()
	if merged.Counters["dram.accesses"] == 0 {
		t.Errorf("merged suite counters empty: %v", merged.Counters)
	}
}

// TestObsDeterminism runs one experiment's cells serially and fanned
// out to 8 workers and requires the rendered metrics JSON to be
// byte-identical. Under -race this is also the concurrent-sink leg:
// eight workers registering cells and sampling probes at once.
func TestObsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	render := func(workers int) []byte {
		suite := obs.NewSuite()
		opts := goldenOpts
		opts.Workers = workers
		opts.Obs = suite
		if _, err := Fig11(opts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if suite.Len() == 0 {
			t.Fatalf("workers=%d: no cells registered", workers)
		}
		enc, err := suite.RenderJSON()
		if err != nil {
			t.Fatalf("workers=%d: render: %v", workers, err)
		}
		return enc
	}
	serial := render(1)
	par := render(8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("metrics JSON depends on worker count\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, par)
	}
	if !json.Valid(serial) {
		t.Fatal("rendered metrics are not valid JSON")
	}
}

// TestTraceDeterminism runs the same seeded service twice with tracing
// armed and requires identical trace-event streams and identical
// metrics snapshots: cycle-stamped observation of a deterministic
// simulation must itself be deterministic.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("service run is not short")
	}
	capture := func() (trace, metrics []byte) {
		col := obs.NewCollector()
		col.EnableTracing()
		if _, err := RunService("httpd", Options{Requests: 4, Obs: col, MetricsEvery: 250_000}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := col.Tracer().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		enc, err := col.RenderJSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), enc
	}
	trace1, metrics1 := capture()
	trace2, metrics2 := capture()
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("trace streams differ across identical runs\n--- run 1 ---\n%s\n--- run 2 ---\n%s", trace1, trace2)
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Errorf("metrics snapshots differ across identical runs\n--- run 1 ---\n%s\n--- run 2 ---\n%s", metrics1, metrics2)
	}
	if !json.Valid(trace1) {
		t.Fatal("trace export is not valid JSON")
	}
	var f struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace1, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("trace is empty: expected request spans and context-switch instants")
	}
	var spans int
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("no request spans (ph \"X\") in the trace")
	}
}

// TestMetricsEverySnapshots pins the mid-run visibility contract:
// with MetricsEvery set the collector holds interior snapshots whose
// counters are strictly behind the final state, not just one
// end-of-run dump.
func TestMetricsEverySnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("service run is not short")
	}
	col := obs.NewCollector()
	if _, err := RunService("httpd", Options{Requests: 4, Obs: col, MetricsEvery: 200_000}); err != nil {
		t.Fatal(err)
	}
	snaps := col.Snapshots()
	if len(snaps) < 2 {
		t.Fatalf("MetricsEvery produced %d snapshot(s), want >= 2", len(snaps))
	}
	first, final := snaps[0], snaps[len(snaps)-1]
	if first.Cycle == 0 || first.Cycle >= final.Cycle {
		t.Fatalf("snapshot cycles not increasing: first %d, final %d", first.Cycle, final.Cycle)
	}
	mid, fin := first.Counters["slot0.cpu.instret"], final.Counters["slot0.cpu.instret"]
	if mid == 0 || mid >= fin {
		t.Fatalf("mid-run instret %d not strictly inside final %d", mid, fin)
	}
}

// TestHeartbeatEscalationMetrics is the regression for the mid-run
// protection-stats fix: a heartbeat escalation must show up in the
// registry (not only in ProtectionStats after Run returns), and the
// tracer's "heartbeat-escalation" instants must carry exactly the
// cycles the protection log records.
func TestHeartbeatEscalationMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-storm run is not short")
	}
	col := obs.NewCollector()
	col.EnableTracing()

	params := workload.MustByName("httpd")
	prog, err := params.BuildProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := chip.DefaultConfig()
	cfg.Faults = []faultinject.Plan{{Site: faultinject.SiteMonitorStall, Rate: 0.05, Seed: 4, StallCycles: 300_000}}
	cfg.HeartbeatInterval = 20_000
	cfg.Recovery.MacroPeriod = 1
	cfg.Obs = col
	c, err := chip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	port := netsim.NewPort(params.GenRequests(6, 1))
	if _, err := c.LaunchService(0, "httpd", prog, port); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(20_000_000); err != nil && !errors.Is(err, chip.ErrInstrLimit) {
		t.Fatal(err)
	}

	st := c.ProtectionStats()
	if st.MacroEscalations == 0 {
		t.Fatal("stall storm produced no macro escalations; test premise broken")
	}
	reg := col.Registry()
	if got := reg.Counter("chip.macro_escalations").Value(); got != st.MacroEscalations {
		t.Errorf("registry chip.macro_escalations = %d, ProtectionStats = %d", got, st.MacroEscalations)
	}
	if got := reg.Counter("chip.heartbeat_misses").Value(); got != st.HeartbeatMisses {
		t.Errorf("registry chip.heartbeat_misses = %d, ProtectionStats = %d", got, st.HeartbeatMisses)
	}

	// Every escalation instant's cycle stamp must match a protection-log
	// "macro restore" line, one-to-one.
	logCycles := map[uint64]int{}
	for _, line := range c.ProtectionLog() {
		if !strings.Contains(line, "macro restore") {
			continue
		}
		var cycle uint64
		var slot int
		if _, err := fmt.Sscanf(line, "cycle %d slot %d", &cycle, &slot); err != nil {
			t.Fatalf("unparseable protection log line %q: %v", line, err)
		}
		logCycles[cycle]++
	}
	var instants int
	for _, ev := range col.Tracer().Events() {
		if ev.Name != "heartbeat-escalation" {
			continue
		}
		instants++
		if logCycles[ev.TS] == 0 {
			t.Errorf("escalation instant at cycle %d has no matching protection-log line", ev.TS)
		} else {
			logCycles[ev.TS]--
		}
	}
	if uint64(instants) != st.MacroEscalations {
		t.Errorf("%d escalation instants, want %d (one per macro escalation)", instants, st.MacroEscalations)
	}
}
