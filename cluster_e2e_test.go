package indra_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indra"
	"indra/internal/cluster"
	"indra/internal/serve"
)

// Black-box tests of the cluster tier: a real router (the same
// cluster.Router construction cmd/indrasrv -cluster uses) over real
// indrasrv workers on loopback listeners, exercised over HTTP. The
// contract is the serving e2e contract one layer up: the bytes a
// client reads through the router must equal the committed goldens
// byte for byte — cold (routed to each key's owner, executed once
// cluster-wide), warm (owner cache hits), and straight through a
// mid-batch worker kill (failover re-routes to the ring successor;
// idempotent re-execution makes the kill invisible in the response
// bytes).

// e2eCluster is one running cluster: n workers, each a real
// serve.Server on its own listener, fronted by a router.
type e2eCluster struct {
	router  *cluster.Router
	base    string
	srvs    []*serve.Server
	ids     []string // worker id (base URL) per srvs index
	client  *http.Client
	drained bool
}

func startE2ECluster(t *testing.T, n int) *e2eCluster {
	t.Helper()
	c := &e2eCluster{client: &http.Client{Timeout: 10 * time.Minute}}
	var workers []cluster.Worker
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{Workers: 2})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(l) }()
		id := "http://" + l.Addr().String()
		c.srvs = append(c.srvs, srv)
		c.ids = append(c.ids, id)
		workers = append(workers, cluster.NewHTTPWorker(id, nil))
	}
	router, err := cluster.New(cluster.Config{
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 2,
	}, workers)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = router.Serve(rl) }()
	c.router = router
	c.base = "http://" + rl.Addr().String()
	t.Cleanup(func() { c.drain(t) })
	return c
}

func (c *e2eCluster) drain(t *testing.T) {
	t.Helper()
	if c.drained {
		return
	}
	c.drained = true
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.router.Drain(ctx); err != nil {
		t.Errorf("router drain: %v", err)
	}
	for i, srv := range c.srvs {
		// A worker killed mid-test has already closed its server; its
		// drain error is expected.
		if _, err := srv.Drain(ctx); err != nil && !srv.Draining() {
			t.Errorf("worker %d drain: %v", i, err)
		}
	}
	c.client.CloseIdleConnections()
}

// routedCell is the router's /v1/cell(s) wire shape.
type routedCell struct {
	Key    string `json:"key"`
	Output string `json:"output"`
	Cached bool   `json:"cached"`
	Status int    `json:"status"`
	Error  string `json:"error"`
	Worker string `json:"worker"`
	Hops   int    `json:"hops"`
}

func (c *e2eCluster) postCell(t *testing.T, key string) routedCell {
	t.Helper()
	resp, err := c.client.Post(c.base+"/v1/cell", "application/json",
		strings.NewReader(fmt.Sprintf(`{"key":%q,"timeout_ms":600000}`, key)))
	if err != nil {
		t.Fatalf("POST /v1/cell %s: %v", key, err)
	}
	defer resp.Body.Close()
	var cell routedCell
	if err := json.NewDecoder(resp.Body).Decode(&cell); err != nil {
		t.Fatalf("decode cell %s: %v", key, err)
	}
	if resp.StatusCode != cell.Status {
		t.Fatalf("cell %s: HTTP status %d but body status %d", key, resp.StatusCode, cell.Status)
	}
	return cell
}

// executions sums serve.executions across the given workers — the
// cluster-wide simulation count.
func (c *e2eCluster) executions(skip int) uint64 {
	var sum uint64
	for i, srv := range c.srvs {
		if i == skip {
			continue
		}
		sum += srv.Metrics().Counters["serve.executions"]
	}
	return sum
}

func (c *e2eCluster) routerCounter(name string) uint64 {
	return c.router.Metrics().Counters[name]
}

// loadGoldens returns canonical key -> committed golden bytes for the
// full experiment suite (goldens are generated at Requests 3, Scale 1,
// Seed 1 — see golden_test.go).
func loadGoldens(t *testing.T) (keys []string, goldens map[string]string) {
	t.Helper()
	goldens = make(map[string]string)
	for _, id := range indra.Experiments() {
		key := indra.CellKey{Experiment: id, Requests: 3, Scale: 1, Seed: 1}.String()
		want, err := os.ReadFile(filepath.Join("testdata", "golden", id+".golden"))
		if err != nil {
			t.Fatalf("missing golden for %s: %v", id, err)
		}
		keys = append(keys, key)
		goldens[key] = string(want)
	}
	return keys, goldens
}

// batchStream POSTs a /v1/cells batch and hands each NDJSON line to
// visit as it arrives (completion order).
func (c *e2eCluster) batchStream(t *testing.T, keys []string, visit func(routedCell)) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"cells": keys, "timeout_ms": 600000})
	resp, err := c.client.Post(c.base+"/v1/cells", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var cell routedCell
		if err := dec.Decode(&cell); err != nil {
			t.Fatalf("NDJSON decode: %v", err)
		}
		visit(cell)
	}
}

// TestClusterGoldenSuite runs the full standard suite through a
// 4-worker cluster — cold via one NDJSON batch, warm via per-cell
// requests — and holds every routed response to the committed golden
// bytes, with exactly one execution per cell across the whole cluster
// (distributed single-flight: the owner executed, peers proxied).
func TestClusterGoldenSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite cluster run is not short")
	}
	c := startE2ECluster(t, 4)
	keys, goldens := loadGoldens(t)

	// Cold: one batch through the router, fanned out to each key's owner.
	got := map[string]routedCell{}
	c.batchStream(t, keys, func(cell routedCell) { got[cell.Key] = cell })
	if len(got) != len(keys) {
		t.Fatalf("batch returned %d cells, want %d", len(got), len(keys))
	}
	owners := map[string]bool{}
	for key, want := range goldens {
		cell, ok := got[key]
		if !ok {
			t.Fatalf("cell %s missing from batch", key)
		}
		if cell.Status != http.StatusOK {
			t.Fatalf("cold cell %s: status %d (%s)", key, cell.Status, cell.Error)
		}
		if cell.Cached {
			t.Errorf("cold cell %s reported cached", key)
		}
		if cell.Worker == "" {
			t.Errorf("cold cell %s carries no routing provenance", key)
		}
		if cell.Hops != 0 {
			t.Errorf("cold cell %s took %d failover hops with all workers healthy", key, cell.Hops)
		}
		if cell.Worker != c.router.Owner(key) {
			t.Errorf("cell %s answered by %s, ring owner is %s", key, cell.Worker, c.router.Owner(key))
		}
		owners[cell.Worker] = true
		if cell.Output != want {
			t.Errorf("cold cell %s diverges from committed golden\n--- routed ---\n%s--- golden ---\n%s",
				key, cell.Output, want)
		}
	}
	if len(owners) < 2 {
		t.Errorf("all %d cells landed on %d worker(s); sharding is not spreading keys", len(keys), len(owners))
	}

	// Distributed single-flight: the cold batch cost exactly one
	// simulation per cell across the entire cluster.
	if n := c.executions(-1); n != uint64(len(keys)) {
		t.Errorf("cluster executed %d simulations for %d cells, want one each", n, len(keys))
	}

	// Warm: every cell again through the router — owner cache hits,
	// same bytes, still zero extra executions.
	for key, want := range goldens {
		cell := c.postCell(t, key)
		if cell.Status != http.StatusOK || !cell.Cached {
			t.Fatalf("warm cell %s: status %d cached %v, want 200 from owner cache", key, cell.Status, cell.Cached)
		}
		if cell.Output != want {
			t.Errorf("warm cell %s diverges from committed golden", key)
		}
	}
	if n := c.executions(-1); n != uint64(len(keys)) {
		t.Errorf("warm pass executed %d extra simulations, want 0", n-uint64(len(keys)))
	}
}

// TestClusterFailoverGoldenSuite kills a worker while the golden-suite
// batch is mid-flight and holds the contract anyway: every response
// byte-identical to its golden (failover re-routes the dead worker's
// keys to their ring successors; re-execution is idempotent), the dead
// worker ejected by the health detector, its completed results pushed
// to the keys' new owners (peer cache fill), and a post-kill warm pass
// served entirely from cache — zero new simulations.
func TestClusterFailoverGoldenSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite cluster failover run is not short")
	}
	c := startE2ECluster(t, 3)
	keys, goldens := loadGoldens(t)

	victim := -1
	var victimID string
	got := map[string]routedCell{}
	c.batchStream(t, keys, func(cell routedCell) {
		got[cell.Key] = cell
		// Kill the worker that answered the second completed cell: it
		// provably owns completed results (the peer-fill corpus) and,
		// this early in a 22-cell batch, still has keys in flight or
		// pending (the failover corpus).
		if len(got) == 2 && victim == -1 {
			victimID = cell.Worker
			for i, id := range c.ids {
				if id == victimID {
					victim = i
				}
			}
			if victim == -1 {
				t.Errorf("batch answered by unknown worker %q", cell.Worker)
				return
			}
			if err := c.srvs[victim].Kill(); err != nil {
				t.Errorf("kill worker %d: %v", victim, err)
			}
		}
	})

	// Byte identity straight through the kill.
	if len(got) != len(keys) {
		t.Fatalf("batch returned %d cells, want %d", len(got), len(keys))
	}
	victimAnswered, failedOver := 0, 0
	for key, want := range goldens {
		cell := got[key]
		if cell.Status != http.StatusOK {
			t.Fatalf("cell %s: status %d (%s) through worker kill", key, cell.Status, cell.Error)
		}
		if cell.Output != want {
			t.Errorf("cell %s diverges from committed golden through worker kill", key)
		}
		if cell.Worker == victimID {
			victimAnswered++
		}
		if cell.Hops > 0 {
			failedOver++
		}
	}
	if victimAnswered == 0 {
		t.Error("victim answered no cells before the kill; test killed too early")
	}
	if failedOver == 0 {
		t.Error("no cell re-routed after the kill; test killed too late to exercise failover")
	}

	// The health detector ejects the victim (request failures and
	// probes share the failure counter), leaving a 2-worker ring.
	waitFor(t, 5*time.Second, func() bool { return len(c.router.Alive()) == 2 })

	// Peer cache fill: every result the victim produced (and no other —
	// survivors' results already live where the ring points) is pushed
	// to its key's new owner. cluster.fills counts installs.
	wantFills := uint64(victimAnswered)
	waitFor(t, 5*time.Second, func() bool {
		return c.routerCounter("cluster.fills")+c.routerCounter("cluster.fill.errors") >= wantFills
	})
	if n := c.routerCounter("cluster.fill.errors"); n != 0 {
		t.Errorf("%d peer cache fills failed", n)
	}
	if n := c.routerCounter("cluster.fills"); n != wantFills {
		t.Errorf("peer cache fills %d, want %d (one per victim-produced result)", n, wantFills)
	}

	// Post-kill warm pass: the survivors' caches (their own results,
	// failover re-executions, and the filled-in victim results) answer
	// everything — byte-identical, zero new simulations.
	before := c.executions(victim)
	for key, want := range goldens {
		cell := c.postCell(t, key)
		if cell.Status != http.StatusOK || !cell.Cached {
			t.Fatalf("post-kill cell %s: status %d cached %v, want 200 from cache", key, cell.Status, cell.Cached)
		}
		if cell.Output != want {
			t.Errorf("post-kill cell %s diverges from committed golden", key)
		}
		if cell.Worker == victimID {
			t.Errorf("post-kill cell %s routed to the dead worker", key)
		}
	}
	if after := c.executions(victim); after != before {
		t.Errorf("post-kill warm pass re-simulated %d cells; peer fill should have warmed the new owners", after-before)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
