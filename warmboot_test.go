package indra

import (
	"reflect"
	"testing"

	"indra/internal/attack"
)

// warmRun executes one bind service run, optionally through a warm
// booter, and returns the pieces the equivalence checks compare.
func warmRun(t *testing.T, w *WarmBooter) *ServiceRun {
	t.Helper()
	run, err := RunService("bind", Options{
		Requests: 3,
		Seed:     1,
		Attacks:  []attack.Kind{attack.StackSmash},
		Warm:     w,
	})
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	return run
}

// TestWarmBootEquivalence is the core warm-start guarantee: a chip
// stamped out of the booter's post-boot snapshot produces output
// byte-identical to a cold boot, and repeat boots hit the cache.
func TestWarmBootEquivalence(t *testing.T) {
	cold := warmRun(t, nil)

	w := NewWarmBooter()
	first := warmRun(t, w)  // miss: primes the cache
	second := warmRun(t, w) // hit: stamped from the snapshot

	for name, run := range map[string]*ServiceRun{"miss": first, "hit": second} {
		if run.Summary != cold.Summary {
			t.Errorf("%s summary diverged: got %+v want %+v", name, run.Summary, cold.Summary)
		}
		if !reflect.DeepEqual(run.Port.Records(), cold.Port.Records()) {
			t.Errorf("%s request records diverged from cold boot", name)
		}
		if run.Result != cold.Result {
			t.Errorf("%s run result diverged: got %+v want %+v", name, run.Result, cold.Result)
		}
	}

	st := w.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fallbacks != 0 {
		t.Errorf("stats = %+v, want {Hits:1 Misses:1 Fallbacks:0}", st)
	}
	if w.Entries() != 1 {
		t.Errorf("Entries() = %d, want 1", w.Entries())
	}
}

// TestWarmBootFallback corrupts every cached snapshot and checks the
// booter falls back to a cold boot — counted, correct, and re-primed.
func TestWarmBootFallback(t *testing.T) {
	cold := warmRun(t, nil)

	w := NewWarmBooter()
	warmRun(t, w) // prime
	if n := w.CorruptForTest(); n != 1 {
		t.Fatalf("CorruptForTest() = %d entries, want 1", n)
	}

	run := warmRun(t, w)
	if run.Summary != cold.Summary {
		t.Errorf("fallback summary diverged: got %+v want %+v", run.Summary, cold.Summary)
	}
	st := w.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}

	// The fallback re-primed the cache: the next boot is a hit again.
	warmRun(t, w)
	if st = w.Stats(); st.Hits != 1 {
		t.Errorf("post-fallback Hits = %d, want 1", st.Hits)
	}
}

// TestWarmBootKeyedByConfig checks distinct chip configs do not share
// warm images.
func TestWarmBootKeyedByConfig(t *testing.T) {
	w := NewWarmBooter()
	warmRun(t, w)

	cfg := DefaultChipConfig()
	cfg.FIFOEntries = 8
	if _, err := RunService("bind", Options{Chip: &cfg, Requests: 3, Seed: 1, Warm: w}); err != nil {
		t.Fatalf("RunService: %v", err)
	}
	if w.Entries() != 2 {
		t.Errorf("Entries() = %d, want 2 (configs must not share images)", w.Entries())
	}
	st := w.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses, 0 hits", st)
	}
}
