package indra

import (
	"reflect"
	"testing"

	"indra/internal/asm"
	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/workload"
)

// warmRun executes one bind service run, optionally through a warm
// booter, and returns the pieces the equivalence checks compare.
func warmRun(t *testing.T, w *WarmBooter) *ServiceRun {
	t.Helper()
	run, err := RunService("bind", Options{
		Requests: 3,
		Seed:     1,
		Attacks:  []attack.Kind{attack.StackSmash},
		Warm:     w,
	})
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	return run
}

// TestWarmBootEquivalence is the core warm-start guarantee: a chip
// stamped out of the booter's post-boot snapshot produces output
// byte-identical to a cold boot, and repeat boots hit the cache.
func TestWarmBootEquivalence(t *testing.T) {
	cold := warmRun(t, nil)

	w := NewWarmBooter()
	first := warmRun(t, w)  // miss: primes the cache
	second := warmRun(t, w) // hit: stamped from the snapshot

	for name, run := range map[string]*ServiceRun{"miss": first, "hit": second} {
		if run.Summary != cold.Summary {
			t.Errorf("%s summary diverged: got %+v want %+v", name, run.Summary, cold.Summary)
		}
		if !reflect.DeepEqual(run.Port.Records(), cold.Port.Records()) {
			t.Errorf("%s request records diverged from cold boot", name)
		}
		if run.Result != cold.Result {
			t.Errorf("%s run result diverged: got %+v want %+v", name, run.Result, cold.Result)
		}
	}

	st := w.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fallbacks != 0 {
		t.Errorf("stats = %+v, want {Hits:1 Misses:1 Fallbacks:0}", st)
	}
	if w.Entries() != 1 {
		t.Errorf("Entries() = %d, want 1", w.Entries())
	}
}

// TestWarmBootFallback corrupts every cached snapshot and checks the
// booter falls back to a cold boot — counted, correct, and re-primed.
func TestWarmBootFallback(t *testing.T) {
	cold := warmRun(t, nil)

	w := NewWarmBooter()
	warmRun(t, w) // prime
	if n := w.CorruptForTest(); n != 1 {
		t.Fatalf("CorruptForTest() = %d entries, want 1", n)
	}

	run := warmRun(t, w)
	if run.Summary != cold.Summary {
		t.Errorf("fallback summary diverged: got %+v want %+v", run.Summary, cold.Summary)
	}
	st := w.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}

	// The fallback re-primed the cache: the next boot is a hit again.
	warmRun(t, w)
	if st = w.Stats(); st.Hits != 1 {
		t.Errorf("post-fallback Hits = %d, want 1", st.Hits)
	}
}

// TestWarmBootKeyedByConfig checks distinct chip configs do not share
// warm images.
func TestWarmBootKeyedByConfig(t *testing.T) {
	w := NewWarmBooter()
	warmRun(t, w)

	cfg := DefaultChipConfig()
	cfg.FIFOEntries = 8
	if _, err := RunService("bind", Options{Chip: &cfg, Requests: 3, Seed: 1, Warm: w}); err != nil {
		t.Fatalf("RunService: %v", err)
	}
	if w.Entries() != 2 {
		t.Errorf("Entries() = %d, want 2 (configs must not share images)", w.Entries())
	}
	st := w.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses, 0 hits", st)
	}
}

// BootNode must stamp identical multi-service nodes out of one cached
// snapshot: the first boot is a miss, every further boot of the same
// platform is a hit, and warm nodes serve byte-identically to cold
// ones.
func TestWarmBootNode(t *testing.T) {
	names := workload.Names()
	cfg := chip.DefaultConfig()
	cfg.Resurrectees = len(names)

	serve := func(ch *chip.Chip, ports []*netsim.Port, progs []*asm.Program) []netsim.Summary {
		t.Helper()
		for s, port := range ports {
			params := workload.MustByName(names[s])
			port.Enqueue(params.GenRequests(2, 1)...)
			if pc, ok := progs[s].Symbols["main_loop"]; ok {
				ch.Wake(s, pc)
			}
		}
		if _, err := ch.Run(0); err != nil {
			t.Fatal(err)
		}
		out := make([]netsim.Summary, len(ports))
		for s, port := range ports {
			out[s] = port.Summarize()
		}
		return out
	}

	w := NewWarmBooter()
	ch1, ports1, progs1, err := w.BootNode(names, 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch2, ports2, progs2, err := w.BootNode(names, 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", st)
	}

	cold := serve(ch1, ports1, progs1)
	warm := serve(ch2, ports2, progs2)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm node diverges from cold:\ncold %+v\nwarm %+v", cold, warm)
	}
	for s := range cold {
		if cold[s].Served != 2 {
			t.Fatalf("service %s served %d of 2", names[s], cold[s].Served)
		}
	}

	// Slot-count mismatches are rejected up front.
	bad := chip.DefaultConfig() // 1 resurrectee
	if _, _, _, err := w.BootNode(names, 1.0, bad); err == nil {
		t.Fatal("BootNode accepted more services than slots")
	}
	if _, _, _, err := w.BootNode(nil, 1.0, cfg); err == nil {
		t.Fatal("BootNode accepted an empty service list")
	}
}
