package indra

import (
	"strings"
	"testing"
)

// Shape-regression tests: each experiment must keep reproducing the
// paper's qualitative result (see EXPERIMENTS.md). Small request
// counts keep them fast; the invariants are scale-stable.

var shapeOpts = ExpOptions{Requests: 4}

func TestShapeTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	r, err := Table2(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if !row.Detected {
			t.Errorf("%s (%s): not detected", row.Attack, row.Policy)
		}
		if !row.Recovered {
			t.Errorf("%s (%s): service not recovered", row.Attack, row.Policy)
		}
	}
	// The paper's Table 2 mapping: with call/return off, injected code
	// must fall to code-origin inspection.
	found := false
	for _, row := range r.Rows {
		if row.Policy != "full" && row.DetectedBy != "code-origin" {
			t.Errorf("degraded-policy row detected by %q, want code-origin", row.DetectedBy)
		}
		if row.Policy != "full" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing the degraded-policy row")
	}
	if !strings.Contains(r.Format(), "Table 2") {
		t.Fatal("format")
	}
}

func TestShapeTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	r, err := Table3(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, row := range r.Rows {
		byName[row.Scheme] = row
	}
	delta := byName["indra-delta"]
	pagecopy := byName["software-pagecopy"]
	log := byName["update-log"]

	// Table 3's asymmetries, measured:
	if delta.BackupCycles*4 > pagecopy.BackupCycles {
		t.Errorf("delta backup (%d) should be far cheaper than page copy (%d)",
			delta.BackupCycles, pagecopy.BackupCycles)
	}
	if delta.RecoveryCycles*4 > log.RecoveryCycles {
		t.Errorf("delta recovery (%d) should be far cheaper than log undo (%d)",
			delta.RecoveryCycles, log.RecoveryCycles)
	}
	// Delta is the best end-to-end.
	for name, row := range byName {
		if name == "indra-delta" {
			continue
		}
		if delta.NormalizedRT > row.NormalizedRT+0.01 {
			t.Errorf("delta RT %.2f worse than %s %.2f", delta.NormalizedRT, name, row.NormalizedRT)
		}
	}
}

func TestShapeTable4(t *testing.T) {
	out := Table4()
	for _, want := range []string{"16KB", "512KB", "CAS", "20 mem bus clocks", "128 entries"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestShapeFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	r, err := Fig9(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Average < 0.3 || r.Average > 6 {
		t.Errorf("average IL1 miss %.2f%% outside the paper's band", r.Average)
	}
	for _, row := range r.Rows {
		if row.MissPct <= 0 || row.MissPct > 8 {
			t.Errorf("%s: miss rate %.2f%%", row.Service, row.MissPct)
		}
	}
}

func TestShapeFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	r, err := Fig10(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The large majority of origin checks are filtered, and 64 entries
	// filter at least as well as 32.
	if r.Average32 > 10 {
		t.Errorf("32-entry CAM leaves %.1f%%", r.Average32)
	}
	if r.Average64 > r.Average32+0.1 {
		t.Errorf("64-entry (%.2f%%) worse than 32-entry (%.2f%%)", r.Average64, r.Average32)
	}
}

func TestShapeFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	r, err := Fig11(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Average <= 0.1 || r.Average > 15 {
		t.Errorf("monitoring overhead %.2f%% outside the single-digit band", r.Average)
	}
}

func TestShapeFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	r, err := Fig12(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	small := r.Points[0]
	var at32, at64 float64
	for _, p := range r.Points {
		switch p.QueueEntries {
		case 32:
			at32 = p.Normalized
		case 64:
			at64 = p.Normalized
		}
	}
	if small.Normalized < at32 {
		t.Errorf("small queue (%.3f) not slower than 32 entries (%.3f)", small.Normalized, at32)
	}
	if small.Normalized < 1.05 {
		t.Errorf("10-entry queue penalty too small: %.3f", small.Normalized)
	}
	if at32 > 1.05 {
		t.Errorf("32 entries should be near-saturated: %.3f", at32)
	}
	if at64 != 1.0 {
		t.Errorf("normalization anchor: %.3f", at64)
	}
}

func TestShapeFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	r, err := Fig13(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	var bind, min, max float64
	min = 1e18
	for _, row := range r.Rows {
		if row.Service == "bind" {
			bind = row.InstrPerReq
		}
		if row.InstrPerReq < min {
			min = row.InstrPerReq
		}
		if row.InstrPerReq > max {
			max = row.InstrPerReq
		}
	}
	if bind != min {
		t.Errorf("bind (%.0f) is not the shortest interval (min %.0f)", bind, min)
	}
	// Paper scale: ~150k (bind) to millions.
	if eq := bind * 10; eq < 80_000 || eq > 400_000 {
		t.Errorf("bind paper-scale interval %.0f outside ~150k band", eq)
	}
	if max/bind < 5 {
		t.Errorf("interval spread too flat: %.0f..%.0f", min, max)
	}
}

func TestShapeFig14VsFig16(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	f14, err := Fig14(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := Fig16(shapeOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Page-copy checkpointing must be substantially worse than INDRA's
	// full monitor+backup configuration — the paper's core comparison.
	var indraAvg float64
	var bind16 float64
	for _, row := range f16.Rows {
		indraAvg += row.MonitorBackup
		if row.Service == "bind" {
			bind16 = row.WithRollback
		}
	}
	indraAvg /= float64(len(f16.Rows))
	if f14.Average < indraAvg+0.5 {
		t.Errorf("page-copy avg %.2f not clearly worse than INDRA %.2f", f14.Average, indraAvg)
	}
	// bind is the >2x outlier under rollback every other request.
	if bind16 < 1.7 {
		t.Errorf("bind with rollback %.2f, paper shows the >2x outlier", bind16)
	}
	for _, row := range f16.Rows {
		if row.Service != "bind" && row.WithRollback > bind16 {
			t.Errorf("%s (%.2f) exceeds the bind outlier (%.2f)", row.Service, row.WithRollback, bind16)
		}
	}
}

func TestShapeFig15(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	// Fig 15 needs a slightly longer stream: with very few requests the
	// handler mix is noisy (one heap-heavy h_mem request skews a small
	// service's density).
	r, err := Fig15(ExpOptions{Requests: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Average < 10 || r.Average > 45 {
		t.Errorf("average dirty-line density %.1f%% outside the paper's band", r.Average)
	}
	var bind, max float64
	for _, row := range r.Rows {
		if row.Service == "bind" {
			bind = row.BackupPct
		}
		if row.BackupPct > max {
			max = row.BackupPct
		}
	}
	if bind != max {
		t.Errorf("bind (%.1f%%) is not the densest (max %.1f%%)", bind, max)
	}
}

func TestExperimentFormatters(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run is not short")
	}
	small := ExpOptions{Requests: 2}
	type fr interface{ Format() string }
	runs := []func() (fr, error){
		func() (fr, error) { return Fig9(small) },
		func() (fr, error) { return Fig13(small) },
		func() (fr, error) { return Fig15(small) },
	}
	for i, run := range runs {
		r, err := run()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		out := r.Format()
		if !strings.Contains(out, "bind") || !strings.Contains(out, "average") && !strings.Contains(out, "instr") {
			t.Errorf("run %d format:\n%s", i, out)
		}
	}
}

func TestMonitorRecordMixHelper(t *testing.T) {
	run, err := RunService("bind", Options{Requests: 2})
	if err != nil {
		t.Fatal(err)
	}
	mix := MonitorRecordMix(run)
	if mix["call"] == 0 || mix["return"] == 0 {
		t.Fatalf("record mix %v", mix)
	}
	kinds := SortedKinds(mix)
	if len(kinds) < 2 || kinds[0] > kinds[1] {
		t.Fatalf("sorted kinds %v", kinds)
	}
}
