package indra_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"indra"
	"indra/internal/serve"
)

// Black-box tests of the serving path: a real indrasrv server (the
// same serve.Server construction cmd/indrasrv uses) on an ephemeral
// port, exercised over HTTP. The e2e test holds the PR-1 invariance
// contract one layer up: the bytes served over the network must equal
// the committed goldens byte for byte, cold (cache miss) and warm
// (cache hit). The soak test hammers the cache/admission machinery
// with overlapping duplicate and distinct cells under -race and checks
// single-flight accounting, cache coherence, and leak-free drain.

// e2eClient pairs the in-process server with an HTTP client whose
// idle connections can be closed before goroutine-leak accounting.
type e2eClient struct {
	srv    *serve.Server
	base   string
	client *http.Client
}

func startE2EServer(t *testing.T, cfg serve.Config) *e2eClient {
	t.Helper()
	srv := serve.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	tr := &http.Transport{}
	return &e2eClient{
		srv:    srv,
		base:   "http://" + l.Addr().String(),
		client: &http.Client{Transport: tr, Timeout: 10 * time.Minute},
	}
}

func (c *e2eClient) drain(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c.client.CloseIdleConnections()
}

type servedCell struct {
	Key       string `json:"key"`
	Output    string `json:"output"`
	Cached    bool   `json:"cached"`
	Status    int    `json:"status"`
	Error     string `json:"error"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (c *e2eClient) postCell(t *testing.T, key string) servedCell {
	t.Helper()
	resp, err := c.client.Post(c.base+"/v1/cell", "application/json",
		strings.NewReader(fmt.Sprintf(`{"key":%q,"timeout_ms":600000}`, key)))
	if err != nil {
		t.Fatalf("POST /v1/cell %s: %v", key, err)
	}
	defer resp.Body.Close()
	var cell servedCell
	if err := json.NewDecoder(resp.Body).Decode(&cell); err != nil {
		t.Fatalf("decode cell %s: %v", key, err)
	}
	if resp.StatusCode != cell.Status {
		t.Fatalf("cell %s: HTTP status %d but body status %d", key, resp.StatusCode, cell.Status)
	}
	return cell
}

func (c *e2eClient) counters(t *testing.T) map[string]uint64 {
	t.Helper()
	resp, err := c.client.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// goldenKey is the canonical cell key of a committed golden: the
// goldens are generated at Requests 3, Scale 1, Seed 1 (golden_test.go).
func goldenKey(id string) string {
	return indra.CellKey{Experiment: id, Requests: 3, Scale: 1, Seed: 1}.String()
}

// TestServeE2EGoldenSuite requests the full standard suite over HTTP —
// cold via one NDJSON batch, warm via per-cell requests — and holds
// every response to the committed golden bytes.
func TestServeE2EGoldenSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite HTTP run is not short")
	}
	c := startE2EServer(t, serve.Config{Workers: 8, QueueDepth: 64})
	defer c.drain(t)

	ids := indra.Experiments()
	keys := make([]string, len(ids))
	goldens := make(map[string]string, len(ids)) // canonical key -> golden bytes
	for i, id := range ids {
		keys[i] = goldenKey(id)
		want, err := os.ReadFile(filepath.Join("testdata", "golden", id+".golden"))
		if err != nil {
			t.Fatalf("missing golden for %s: %v", id, err)
		}
		goldens[keys[i]] = string(want)
	}

	// Cold: one batch, streamed back as NDJSON in completion order.
	body, _ := json.Marshal(map[string]any{"cells": keys, "timeout_ms": 600000})
	resp, err := c.client.Post(c.base+"/v1/cells", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	got := map[string]servedCell{}
	for dec.More() {
		var cell servedCell
		if err := dec.Decode(&cell); err != nil {
			t.Fatalf("NDJSON decode: %v", err)
		}
		got[cell.Key] = cell
	}
	if len(got) != len(keys) {
		t.Fatalf("batch returned %d cells, want %d", len(got), len(keys))
	}
	for key, want := range goldens {
		cell, ok := got[key]
		if !ok {
			t.Fatalf("cell %s missing from batch", key)
		}
		if cell.Status != http.StatusOK {
			t.Fatalf("cold cell %s: status %d (%s)", key, cell.Status, cell.Error)
		}
		if cell.Cached {
			t.Errorf("cold cell %s reported cached", key)
		}
		if cell.Output != want {
			t.Errorf("cold cell %s diverges from committed golden\n--- served ---\n%s--- golden ---\n%s",
				key, cell.Output, want)
		}
	}

	// Warm: every cell again, one by one — cache hits, same bytes.
	for key, want := range goldens {
		cell := c.postCell(t, key)
		if cell.Status != http.StatusOK || !cell.Cached {
			t.Fatalf("warm cell %s: status %d cached %v, want 200 from cache", key, cell.Status, cell.Cached)
		}
		if cell.Output != want {
			t.Errorf("warm cell %s diverges from committed golden", key)
		}
	}

	m := c.counters(t)
	n := uint64(len(keys))
	if m["serve.executions"] != n {
		t.Errorf("executions %d, want %d (cold batch only)", m["serve.executions"], n)
	}
	if m["serve.cache.misses"] != n || m["serve.cache.hits"] != n {
		t.Errorf("cache hits/misses %d/%d, want %d/%d", m["serve.cache.hits"], m["serve.cache.misses"], n, n)
	}
}

// TestServeWarmStart holds the warm-boot contract at the HTTP layer:
// a server stamping chips out of post-boot snapshots serves NDJSON
// bodies byte-identical to a cold-booting server on cache misses, and
// a snapshot that fails to load falls back to a cold boot — counted in
// serve.warmboot.fallbacks, output unchanged.
func TestServeWarmStart(t *testing.T) {
	keys := []string{
		indra.CellKey{Experiment: "fig9", Requests: 1, Scale: 1, Seed: 1}.String(),
		indra.CellKey{Experiment: "fig9", Requests: 2, Scale: 1, Seed: 1}.String(),
		indra.CellKey{Experiment: "latency", Requests: 1, Scale: 1, Seed: 1}.String(),
	}
	fallbackKey := indra.CellKey{Experiment: "latency", Requests: 2, Scale: 1, Seed: 1}.String()

	batch := func(c *e2eClient, keys []string) map[string]servedCell {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"cells": keys, "timeout_ms": 600000})
		resp, err := c.client.Post(c.base+"/v1/cells", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
		dec := json.NewDecoder(resp.Body)
		got := map[string]servedCell{}
		for dec.More() {
			var cell servedCell
			if err := dec.Decode(&cell); err != nil {
				t.Fatalf("NDJSON decode: %v", err)
			}
			if cell.Status != http.StatusOK {
				t.Fatalf("cell %s: status %d (%s)", cell.Key, cell.Status, cell.Error)
			}
			got[cell.Key] = cell
		}
		return got
	}

	cold := startE2EServer(t, serve.Config{Workers: 2, DisableWarmBoot: true})
	defer cold.drain(t)
	coldCells := batch(cold, append(append([]string{}, keys...), fallbackKey))
	if m := cold.counters(t); m["serve.warmboot.hits"]+m["serve.warmboot.misses"]+m["serve.warmboot.fallbacks"] != 0 {
		t.Errorf("cold server touched the warm booter: %v", m)
	}

	booter := indra.NewWarmBooter()
	warm := startE2EServer(t, serve.Config{Workers: 2, Warm: booter})
	defer warm.drain(t)

	// Every key is a result-cache miss on this fresh server, so each
	// cell really executes — the first boots of each platform prime the
	// booter, later ones are stamped from snapshots.
	warmCells := batch(warm, keys)
	for _, key := range keys {
		if warmCells[key].Cached {
			t.Errorf("cell %s hit the result cache; warm-boot path not exercised", key)
		}
		if warmCells[key].Output != coldCells[key].Output {
			t.Errorf("cell %s: warm-boot output diverges from cold boot\n--- warm ---\n%s--- cold ---\n%s",
				key, warmCells[key].Output, coldCells[key].Output)
		}
	}
	m := warm.counters(t)
	if m["serve.warmboot.misses"] == 0 || m["serve.warmboot.hits"] == 0 {
		t.Errorf("warm booter unused: hits %d misses %d", m["serve.warmboot.hits"], m["serve.warmboot.misses"])
	}
	if m["serve.warmboot.fallbacks"] != 0 {
		t.Errorf("unexpected fallbacks before corruption: %d", m["serve.warmboot.fallbacks"])
	}

	// Snapshot-load failure: corrupt every cached snapshot, then issue a
	// cell this server has not yet seen (result-cache miss). The booter
	// must fall back to a cold boot, count it, and serve the same bytes.
	if n := booter.CorruptForTest(); n == 0 {
		t.Fatal("CorruptForTest found no cached snapshots")
	}
	cell := warm.postCell(t, fallbackKey)
	if cell.Status != http.StatusOK || cell.Cached {
		t.Fatalf("fallback cell: status %d cached %v, want fresh 200", cell.Status, cell.Cached)
	}
	if cell.Output != coldCells[fallbackKey].Output {
		t.Errorf("fallback output diverges from cold boot")
	}
	if m = warm.counters(t); m["serve.warmboot.fallbacks"] == 0 {
		t.Error("snapshot-load failure not counted in serve.warmboot.fallbacks")
	}
}

// TestServeSoakSingleFlight floods the server with concurrent clients
// issuing overlapping duplicate and distinct cells, then verifies
// single-flight accounting (one execution per distinct cell), cache
// coherence (all clients saw identical bytes per key), and a clean
// drain with no leaked goroutines.
func TestServeSoakSingleFlight(t *testing.T) {
	before := runtime.NumGoroutine()

	c := startE2EServer(t, serve.Config{Workers: 4, QueueDepth: 1024})

	// Distinct cells: table4 variants are free (no simulation), so the
	// soak stresses the serving machinery, not the simulator; one real
	// simulated experiment rides along when the run is not -short.
	var keys []string
	for req := 1; req <= 10; req++ {
		keys = append(keys, indra.CellKey{Experiment: "table4", Requests: req, Scale: 1, Seed: 1}.String())
	}
	if !testing.Short() {
		keys = append(keys, indra.CellKey{Experiment: "fig9", Requests: 1, Scale: 1, Seed: 1}.String())
	}

	const clients = 8
	const iters = 30
	outputs := make([]map[string]string, clients) // per-client key -> bytes
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen := make(map[string]string)
			for i := 0; i < iters; i++ {
				key := keys[(g*7+i*3)%len(keys)] // overlapping, client-skewed walk
				cell := c.postCell(t, key)
				if cell.Status != http.StatusOK {
					t.Errorf("client %d: cell %s status %d (%s)", g, key, cell.Status, cell.Error)
					return
				}
				if prev, ok := seen[key]; ok && prev != cell.Output {
					t.Errorf("client %d: cell %s changed bytes between requests", g, key)
					return
				}
				seen[key] = cell.Output
			}
			outputs[g] = seen
		}(g)
	}
	wg.Wait()

	// Cache coherence across clients: same key, same bytes, everywhere.
	canonical := map[string]string{}
	for g, seen := range outputs {
		for key, out := range seen {
			if prev, ok := canonical[key]; ok && prev != out {
				t.Fatalf("client %d saw different bytes for %s than an earlier client", g, key)
			}
			canonical[key] = out
		}
	}

	// Single-flight: exactly one simulation per distinct cell, and
	// every cell request either executed or hit the cache.
	m := c.counters(t)
	if m["serve.executions"] != uint64(len(keys)) {
		t.Errorf("executions %d, want %d (one per distinct cell)", m["serve.executions"], len(keys))
	}
	if m["serve.cache.misses"] != uint64(len(keys)) {
		t.Errorf("cache misses %d, want %d", m["serve.cache.misses"], len(keys))
	}
	total := uint64(clients * iters)
	if m["serve.cells"] != total {
		t.Errorf("cells %d, want %d", m["serve.cells"], total)
	}
	if m["serve.cache.hits"]+m["serve.cache.misses"] != total {
		t.Errorf("hits %d + misses %d != cells %d", m["serve.cache.hits"], m["serve.cache.misses"], total)
	}
	if m["serve.rejected"] != 0 || m["serve.deadlines"] != 0 {
		t.Errorf("unexpected sheds: rejected %d deadlines %d", m["serve.rejected"], m["serve.deadlines"])
	}

	// Clean drain: no goroutines left behind (retry — the HTTP stack
	// unwinds asynchronously after Shutdown returns).
	c.drain(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		c.client.CloseIdleConnections()
		after := runtime.NumGoroutine()
		if after <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across serve+drain: before %d, after %d", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
