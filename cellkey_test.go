package indra

import (
	"strings"
	"testing"
)

// The canonical cell key is the serving layer's cache identity, so its
// parse/format pair must round-trip exactly: any accepted input
// reformats to a fixed point that parses back to the same key.

func TestCellKeyRoundTrip(t *testing.T) {
	cases := []CellKey{
		{Experiment: "fig9", Requests: 3, Scale: 1, Seed: 1},
		{Experiment: "table4", Requests: 1, Scale: 1, Seed: 42},
		{Experiment: "ablation-bpred", Requests: 8, Scale: 2.5, Seed: 7},
		{Experiment: "faultsweep", Requests: 64, Scale: 0.125, Seed: 4294967295},
		{Experiment: "fleet", Requests: 3, Scale: 1, Seed: 1, Policy: "tmr", Nodes: 5},
		{Experiment: "fleet", Requests: 3, Scale: 1, Seed: 1, Policy: "dos-resurrector"},
		{Experiment: "fleet", Requests: 8, Scale: 1, Seed: 2, Nodes: 64},
	}
	for _, k := range cases {
		s := k.String()
		got, err := ParseCellKey(s)
		if err != nil {
			t.Fatalf("ParseCellKey(%q): %v", s, err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %+v, want %+v", s, got, k)
		}
		if got.String() != s {
			t.Fatalf("format not a fixed point: %q -> %q", s, got.String())
		}
	}
}

func TestParseCellKeyDefaultsAndOrder(t *testing.T) {
	k, err := ParseCellKey("fig9")
	if err != nil {
		t.Fatal(err)
	}
	want := CellKey{Experiment: "fig9", Requests: 8, Scale: 1, Seed: 1}
	if k != want {
		t.Fatalf("bare id: %+v, want standard defaults %+v", k, want)
	}
	// Fields may arrive in any order and any subset.
	k, err = ParseCellKey("fig9/seed=5/req=2")
	if err != nil {
		t.Fatal(err)
	}
	if k.Requests != 2 || k.Seed != 5 || k.Scale != 1 {
		t.Fatalf("reordered fields: %+v", k)
	}
	if k.String() != "fig9/req=2/scale=1/seed=5" {
		t.Fatalf("canonical form %q", k.String())
	}
}

func TestParseCellKeyRejects(t *testing.T) {
	bad := []string{
		"",                      // empty id
		"/req=1",                // empty id with fields
		"Fig9",                  // uppercase id
		"fig9/req",              // field without value
		"fig9/req=0",            // non-positive requests
		"fig9/req=-3",           // negative requests
		"fig9/req=two",          // non-numeric
		"fig9/scale=0",          // non-positive scale
		"fig9/scale=-1",         // negative scale
		"fig9/scale=nan",        // NaN never round-trips
		"fig9/scale=inf",        // out of range
		"fig9/scale=1e300",      // absurd scale
		"fig9/seed=0",           // zero seed is reserved (fill() default)
		"fig9/seed=4294967296",  // overflows uint32
		"fig9/workers=4",        // scheduling knobs are not part of the key
		"fig9/req=1/unknown=et", // unknown field
		"fleet/policy=",         // empty policy
		"fleet/policy=TMR",      // uppercase policy
		"fleet/policy=tmr2",     // digits are not policy characters
		"fleet/nodes=0",         // below the 1..64 range
		"fleet/nodes=65",        // above the 1..64 range
		"fleet/nodes=-3",        // negative nodes
		"fleet/nodes=three",     // non-numeric nodes
	}
	for _, s := range bad {
		if k, err := ParseCellKey(s); err == nil {
			t.Errorf("ParseCellKey(%q) accepted: %+v", s, k)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) == 0 || ids[0] != "table2" {
		t.Fatalf("registry order starts %v", ids[:min(3, len(ids))])
	}
	// Every golden-tested experiment must be servable by id.
	for _, tc := range goldenCases() {
		if !KnownExperiment(tc.name) {
			t.Errorf("golden experiment %q missing from the registry", tc.name)
		}
	}
	if KnownExperiment("fig99") {
		t.Error("KnownExperiment accepted an unregistered id")
	}
	if _, err := RunExperiment("fig99", ExpOptions{}); err == nil {
		t.Error("RunExperiment accepted an unregistered id")
	}
}

func TestRunCellMatchesDirectExperiment(t *testing.T) {
	// table4 is option-independent and costs nothing: a direct
	// registry sanity check without a simulation.
	out, err := RunCell(CellKey{Experiment: "table4", Requests: 1, Scale: 1, Seed: 1}, ExpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out != Table4() {
		t.Fatal("RunCell(table4) differs from Table4()")
	}
	if !strings.HasPrefix(out, "Table 4:") {
		t.Fatalf("unexpected output %q", out[:40])
	}
}

// FuzzParseCellKey holds the round-trip invariant over arbitrary
// input: any string the parser accepts must reformat canonically and
// reparse to the identical key (mirrors FuzzParsePlans/FuzzAssemble).
func FuzzParseCellKey(f *testing.F) {
	for _, id := range Experiments() {
		f.Add(CellKey{Experiment: id, Requests: 3, Scale: 1, Seed: 1}.String())
	}
	f.Add("fig9")
	f.Add("fig9/seed=5/req=2")
	f.Add("fig9/req=2/scale=0.125/seed=4294967295")
	f.Add("fig9/scale=2.5e-3")
	f.Add("x/req=+07")
	f.Add("fleet/policy=tmr/nodes=5")
	f.Add("fleet/req=1/policy=reactive")
	f.Add("fleet/nodes=64/seed=9")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseCellKey(s)
		if err != nil {
			return // rejected input is fine; accepted input must round-trip
		}
		canon := k.String()
		k2, err := ParseCellKey(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted key %q does not parse: %v", canon, s, err)
		}
		if k2 != k {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", s, k, canon, k2)
		}
		if k2.String() != canon {
			t.Fatalf("format is not a fixed point: %q -> %q", canon, k2.String())
		}
		if k.Requests <= 0 || !(k.Scale > 0) || k.Seed == 0 {
			t.Fatalf("parser accepted out-of-domain key %+v from %q", k, s)
		}
	})
}
