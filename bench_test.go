package indra

import (
	"runtime"
	"testing"

	"indra/internal/obs"
	"indra/internal/parallel"
)

// One benchmark per table and figure of the paper's evaluation. Each
// runs the corresponding experiment end to end on the simulated
// platform and reports the figure's headline quantity as a custom
// metric, so `go test -bench=.` regenerates the entire evaluation.
// The request count is kept small per iteration; cmd/indrabench runs
// the same experiments with configurable depth.

var benchOpts = ExpOptions{Requests: 4, Scale: 1.0, Seed: 1}

func BenchmarkTable2DetectionMatrix(b *testing.B) {
	var detected, rows int
	for i := 0; i < b.N; i++ {
		r, err := Table2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		detected, rows = 0, len(r.Rows)
		for _, row := range r.Rows {
			if row.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "attacks-detected")
	b.ReportMetric(float64(rows), "attacks-launched")
}

func BenchmarkTable3BackupSchemes(b *testing.B) {
	var deltaBackup, pageBackup float64
	for i := 0; i < b.N; i++ {
		r, err := Table3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Scheme {
			case "indra-delta":
				deltaBackup = float64(row.BackupCycles)
			case "software-pagecopy":
				pageBackup = float64(row.BackupCycles)
			}
		}
	}
	b.ReportMetric(deltaBackup, "delta-backup-cyc/req")
	b.ReportMetric(pageBackup, "pagecopy-backup-cyc/req")
	if pageBackup > 0 {
		b.ReportMetric(pageBackup/deltaBackup, "delta-advantage-x")
	}
}

func BenchmarkTable4Parameters(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(Table4())
	}
	b.ReportMetric(float64(n), "table-bytes")
}

func BenchmarkFig9IL1MissRate(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := Fig9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		avg = r.Average
	}
	b.ReportMetric(avg, "avg-miss-%")
}

func BenchmarkFig10CAMFilter(b *testing.B) {
	var r32, r64 float64
	for i := 0; i < b.N; i++ {
		r, err := Fig10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		r32, r64 = r.Average32, r.Average64
	}
	b.ReportMetric(r32, "remain-32-%")
	b.ReportMetric(r64, "remain-64-%")
}

func BenchmarkFig11MonitorOverhead(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := Fig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		avg = r.Average
	}
	b.ReportMetric(avg, "avg-overhead-%")
}

func BenchmarkFig12QueueSize(b *testing.B) {
	var at10, at32 float64
	for i := 0; i < b.N; i++ {
		r, err := Fig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		at10 = r.Points[0].Normalized
		for _, p := range r.Points {
			if p.QueueEntries == 32 {
				at32 = p.Normalized
			}
		}
	}
	b.ReportMetric(at10, "norm-RT-q10")
	b.ReportMetric(at32, "norm-RT-q32")
}

func BenchmarkFig13RequestInterval(b *testing.B) {
	var bind, max float64
	for i := 0; i < b.N; i++ {
		r, err := Fig13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		max = 0
		for _, row := range r.Rows {
			if row.Service == "bind" {
				bind = row.InstrPerReq
			}
			if row.InstrPerReq > max {
				max = row.InstrPerReq
			}
		}
	}
	b.ReportMetric(bind, "bind-instr/req")
	b.ReportMetric(max, "max-instr/req")
}

func BenchmarkFig14PageCopySlowdown(b *testing.B) {
	var avg, bind float64
	for i := 0; i < b.N; i++ {
		r, err := Fig14(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		avg = r.Average
		for _, row := range r.Rows {
			if row.Service == "bind" {
				bind = row.Normalized
			}
		}
	}
	b.ReportMetric(avg, "avg-slowdown-x")
	b.ReportMetric(bind, "bind-slowdown-x")
}

func BenchmarkFig15DirtyLineFraction(b *testing.B) {
	var avg, bind float64
	for i := 0; i < b.N; i++ {
		r, err := Fig15(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		avg = r.Average
		for _, row := range r.Rows {
			if row.Service == "bind" {
				bind = row.BackupPct
			}
		}
	}
	b.ReportMetric(avg, "avg-dirty-%")
	b.ReportMetric(bind, "bind-dirty-%")
}

func BenchmarkFig16BackupRollback(b *testing.B) {
	var mb, rb float64
	for i := 0; i < b.N; i++ {
		r, err := Fig16(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		mb, rb = 0, 0
		for _, row := range r.Rows {
			mb += row.MonitorBackup
			rb += row.WithRollback
		}
		mb /= float64(len(r.Rows))
		rb /= float64(len(r.Rows))
	}
	b.ReportMetric(mb, "monitor+backup-x")
	b.ReportMetric(rb, "with-rollback-x")
}

// BenchmarkAvailability compares INDRA micro recovery against
// restart-based recovery under recurring exploits (the paper's
// motivating scenario, Section 2.2).
func BenchmarkAvailability(b *testing.B) {
	var indraAvail, rebootAvail float64
	for i := 0; i < b.N; i++ {
		r, err := Availability(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Strategy {
			case "indra-micro":
				indraAvail = row.Availability
			case "reboot":
				rebootAvail = row.Availability
			}
		}
	}
	b.ReportMetric(indraAvail*100, "indra-avail-%")
	b.ReportMetric(rebootAvail*100, "reboot-avail-%")
}

// ------------------------------------------- full-suite speedup guard

// fullSuite regenerates every figure and table once with the given
// worker count, returning the runner's cell/timing stats. A non-nil
// suite observes every RunService-backed cell (see BENCH_baseline.json
// and TestBenchBaseline for the committed counter baseline).
func fullSuite(tb testing.TB, workers int, suite *obs.Suite) parallel.Stats {
	tb.Helper()
	m := parallel.NewMeter()
	o := ExpOptions{Requests: 2, Scale: 1.0, Seed: 1, Workers: workers, Meter: m, Obs: suite}
	if err := FullEvaluation(o); err != nil {
		tb.Fatal(err)
	}
	return m.Stats()
}

// BenchmarkFullSuiteSerial and BenchmarkFullSuiteParallel are the
// regression guard for the parallel runner: the true speedup is the
// ratio of their ns/op (serial wall over parallel wall). On N ≥ 4
// cores the parallel suite is expected to run ≥ 2x faster; see
// EXPERIMENTS.md. The effective-parallelism metric is average cells
// in flight as seen by the meter — it tracks speedup only while
// workers ≤ cores.
func BenchmarkFullSuiteSerial(b *testing.B) {
	var st parallel.Stats
	for i := 0; i < b.N; i++ {
		st = fullSuite(b, 1, nil)
	}
	b.ReportMetric(float64(st.Jobs), "cells")
	b.ReportMetric(st.Parallelism(), "effective-parallelism-x")
}

func BenchmarkFullSuiteParallel(b *testing.B) {
	var st parallel.Stats
	for i := 0; i < b.N; i++ {
		st = fullSuite(b, 0, nil) // 0 = GOMAXPROCS workers
	}
	b.ReportMetric(float64(st.Jobs), "cells")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	b.ReportMetric(st.Parallelism(), "effective-parallelism-x")
}

// BenchmarkFullSuiteObserved runs the same suite with a metrics suite
// armed on every cell and reports the merged simulation counters —
// both a cost check for armed observation (compare ns/op against
// BenchmarkFullSuiteParallel) and the source of the committed
// BENCH_baseline.json (see TestBenchBaseline).
func BenchmarkFullSuiteObserved(b *testing.B) {
	var merged obs.Snapshot
	var cells int
	for i := 0; i < b.N; i++ {
		suite := obs.NewSuite()
		fullSuite(b, 0, suite)
		merged = suite.Merged()
		cells = suite.Len()
	}
	b.ReportMetric(float64(cells), "observed-cells")
	b.ReportMetric(float64(merged.Counters["dram.accesses"]), "dram-accesses")
	b.ReportMetric(float64(merged.Counters["monitor.violations"]), "violations")
	b.ReportMetric(float64(merged.Counters["slot0.cpu.instret"]), "slot0-instret")
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per wall-clock second), for the curious.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instr uint64
	for i := 0; i < b.N; i++ {
		run, err := RunService("httpd", Options{Requests: 2})
		if err != nil {
			b.Fatal(err)
		}
		instr += run.Result.Instret
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}
