package indra

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"indra/internal/chip"
)

// TestResumerCrashResume simulates a killed experiment run: the first
// attempt dies mid-run (instruction cap standing in for the crash),
// leaving a progress file; the second attempt must resume from it and
// finish with results identical to an uninterrupted run.
func TestResumerCrashResume(t *testing.T) {
	cold, err := RunService("bind", Options{Requests: 3})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	dir := t.TempDir()
	r := &Resumer{Dir: dir, Every: 20_000}

	_, err = RunService("bind", Options{Requests: 3, MaxInstructions: 30_000, RunLoop: r.RunLoop})
	if !errors.Is(err, chip.ErrInstrLimit) {
		t.Fatalf("crashed run: err = %v, want instruction limit", err)
	}
	progress, _ := filepath.Glob(filepath.Join(dir, "*.resume"))
	if len(progress) != 1 {
		t.Fatalf("progress files after crash = %d, want 1", len(progress))
	}
	if st := r.Stats(); st.Resumed != 0 || st.Saved == 0 {
		t.Fatalf("crash stats = %+v, want 0 resumed, >0 saved", st)
	}

	run, err := RunService("bind", Options{Requests: 3, RunLoop: r.RunLoop})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if st := r.Stats(); st.Resumed != 1 {
		t.Fatalf("Resumed = %d, want 1 (run restarted cold instead of resuming)", st.Resumed)
	}
	if run.Summary != cold.Summary {
		t.Errorf("resumed summary diverged: got %+v want %+v", run.Summary, cold.Summary)
	}
	if run.Result != cold.Result {
		t.Errorf("resumed result diverged: got %+v want %+v (Instret must include pre-crash work)", run.Result, cold.Result)
	}
	if progress, _ = filepath.Glob(filepath.Join(dir, "*.resume")); len(progress) != 0 {
		t.Errorf("progress file not removed after completion: %v", progress)
	}
}

// TestResumerIgnoresTornProgress checks a corrupt progress file is not
// trusted: the run restarts from zero and still finishes correctly.
func TestResumerIgnoresTornProgress(t *testing.T) {
	cold, err := RunService("bind", Options{Requests: 3})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	dir := t.TempDir()
	r := &Resumer{Dir: dir, Every: 20_000}
	if _, err := RunService("bind", Options{Requests: 3, MaxInstructions: 30_000, RunLoop: r.RunLoop}); !errors.Is(err, chip.ErrInstrLimit) {
		t.Fatalf("crashed run: err = %v", err)
	}
	progress, _ := filepath.Glob(filepath.Join(dir, "*.resume"))
	if len(progress) != 1 {
		t.Fatalf("progress files = %d, want 1", len(progress))
	}
	truncateFile(t, progress[0])

	run, err := RunService("bind", Options{Requests: 3, RunLoop: r.RunLoop})
	if err != nil {
		t.Fatalf("rerun over torn progress: %v", err)
	}
	if st := r.Stats(); st.Resumed != 0 {
		t.Errorf("Resumed = %d, want 0 (torn file must not be trusted)", st.Resumed)
	}
	if run.Summary != cold.Summary || run.Result != cold.Result {
		t.Errorf("restarted run diverged from cold run")
	}
}

func truncateFile(t *testing.T, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}
}
