package indra

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"indra/internal/obs"
)

// BENCH_baseline.json is the committed merged counter snapshot of the
// full benchmark suite (Fig9–16, Table2, Table3 at Requests: 2, Seed:
// 1). It pins what the simulator *does* — DRAM accesses, cache fills,
// monitor verifications, checkpoint line copies — so a behavioural
// drift shows up as a counter diff even when the rendered experiment
// output happens to stay stable. Regenerate after an intentional model
// change with:
//
//	go test -run TestBenchBaseline -update-bench

var updateBench = flag.Bool("update-bench", false, "rewrite BENCH_baseline.json from the current full-suite counters")

const benchBaselinePath = "BENCH_baseline.json"

func TestBenchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run is not short")
	}
	suite := obs.NewSuite()
	fullSuite(t, 0, suite)
	if suite.Len() == 0 {
		t.Fatal("full suite registered no observed cells")
	}
	got, err := json.MarshalIndent(suite.Merged(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateBench {
		if err := os.WriteFile(benchBaselinePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(benchBaselinePath)
	if err != nil {
		t.Fatalf("missing baseline (run with -update-bench to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("full-suite counters drifted from %s (regenerate with -update-bench if intentional)\n--- got ---\n%s--- want ---\n%s",
			benchBaselinePath, got, want)
	}
}
