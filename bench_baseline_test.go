package indra

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"indra/internal/obs"
	"indra/internal/perf"
)

// BENCH_baseline.json is the committed benchmark document: a "sim"
// section with the merged counter snapshot of the full benchmark suite
// (Fig9–16, Table2, Table3 at Requests: 2, Seed: 1) and a "perf"
// section with the host-performance measurements of PerfSuite.
//
// The sim section pins what the simulator *does* — DRAM accesses,
// cache fills, monitor verifications, checkpoint line copies — so a
// behavioural drift shows up as a counter diff even when the rendered
// experiment output happens to stay stable. This test owns the sim
// section; regenerate it after an intentional model change with:
//
//	go test -run TestBenchBaseline -update-bench
//
// The perf section is owned by `indrabench -perfcheck -update-bench`
// (see cmd/indrabench); -update-bench here preserves it untouched.

var updateBench = flag.Bool("update-bench", false, "rewrite BENCH_baseline.json's sim section from the current full-suite counters")

const benchBaselinePath = "BENCH_baseline.json"

func TestBenchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run is not short")
	}
	suite := obs.NewSuite()
	fullSuite(t, 0, suite)
	if suite.Len() == 0 {
		t.Fatal("full suite registered no observed cells")
	}
	got, err := json.MarshalIndent(suite.Merged(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	if *updateBench {
		doc, err := perf.ReadFile(benchBaselinePath)
		if err != nil {
			if !os.IsNotExist(err) {
				t.Fatal(err)
			}
			doc = &perf.File{}
		}
		doc.Sim = json.RawMessage(got)
		if err := doc.WriteFile(benchBaselinePath); err != nil {
			t.Fatal(err)
		}
		return
	}

	doc, err := perf.ReadFile(benchBaselinePath)
	if err != nil {
		t.Fatalf("missing baseline (run with -update-bench to create): %v", err)
	}
	want := new(bytes.Buffer)
	if err := json.Indent(want, doc.Sim, "", "  "); err != nil {
		t.Fatalf("baseline sim section: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("full-suite counters drifted from %s (regenerate with -update-bench if intentional)\n--- got ---\n%s\n--- want ---\n%s",
			benchBaselinePath, got, want.Bytes())
	}
}
