package indra

import (
	"fmt"
	"strings"

	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/parallel"
	"indra/internal/workload"
)

// The availability experiment quantifies the paper's motivation
// (Sections 1 and 2.2): under recurring remote exploits, conventional
// restart-based recovery loses the requests that arrive during each
// outage and pays the full reboot latency per attack, while INDRA's
// micro recovery repairs the damage in ~10^3 cycles and serves every
// legitimate client.

// AvailabilityRow is one recovery strategy's outcome.
type AvailabilityRow struct {
	Strategy     string
	LegitServed  int
	LegitTotal   int
	TotalCycles  uint64
	Availability float64 // served / total legitimate requests
}

// AvailabilityResult compares INDRA micro recovery against reboots
// under an attack-every-other-request barrage.
type AvailabilityResult struct {
	Service string
	Rows    []AvailabilityRow
}

// Availability runs the comparison; the two strategies are independent
// cells, each building its own program and attack-laced stream.
func Availability(o ExpOptions) (*AvailabilityResult, error) {
	o = o.fill()
	const service = "bind"

	type cell struct {
		strategy string
		mutate   func(*chip.Config)
	}
	cells := []cell{
		{"indra-micro", func(c *chip.Config) {}},
		{"reboot", func(c *chip.Config) {
			c.Scheme = chip.SchemeNone
			c.RebootRecovery = true
		}},
	}
	rows, err := parallel.Run(o.pool(), cells, func(_ int, c cell) (AvailabilityRow, error) {
		params := workload.MustByName(service)
		if o.Scale != 1.0 {
			params = params.Scale(o.Scale)
		}
		prog, err := params.BuildProgram()
		if err != nil {
			return AvailabilityRow{}, err
		}
		smash, err := attack.NewStackSmash(prog)
		if err != nil {
			return AvailabilityRow{}, err
		}
		var stream []netsim.Request
		for _, rq := range params.GenRequests(o.Requests, o.Seed) {
			a := smash
			a.Payload = append([]byte(nil), smash.Payload...)
			stream = append(stream, a, rq) // attack, legit, attack, legit...
		}
		cfg := chip.DefaultConfig()
		c.mutate(&cfg)
		ch, err := chip.New(cfg)
		if err != nil {
			return AvailabilityRow{}, err
		}
		port := netsim.NewPort(stream)
		if _, err := ch.LaunchService(0, service, prog, port); err != nil {
			return AvailabilityRow{}, err
		}
		ch, result, err := o.drive(ch, 0)
		if err != nil {
			return AvailabilityRow{}, err
		}
		if p := ch.ActivePort(0); p != nil {
			port = p
		}
		served, total := 0, 0
		for _, r := range port.Records() {
			if r.Label != "legit" {
				continue
			}
			total++
			if r.Outcome == netsim.Served {
				served++
			}
		}
		return AvailabilityRow{
			Strategy:     c.strategy,
			LegitServed:  served,
			LegitTotal:   total,
			TotalCycles:  result.Cycles,
			Availability: float64(served) / float64(total),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AvailabilityResult{Service: service, Rows: rows}, nil
}

// Format renders the comparison.
func (r *AvailabilityResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Availability under recurring exploits (%s, attack before every legit request)\n", r.Service)
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "strategy", "legit served", "availability", "total cycles")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %8d/%-5d %13.0f%% %14d\n",
			row.Strategy, row.LegitServed, row.LegitTotal, row.Availability*100, row.TotalCycles)
	}
	return b.String()
}
