// Quickstart: boot the INDRA platform, run a web-server-like service
// through a stream of requests, and print what the simulation measured.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"indra"
)

func main() {
	// One call builds the synthetic httpd service, boots the asymmetric
	// dual-core (resurrector + resurrectee), wires the delta checkpoint
	// engine and serves the requests.
	run, err := indra.RunService("httpd", indra.Options{Requests: 6})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s on INDRA ===\n", run.Name)
	for _, step := range run.Chip.Boot().Steps {
		fmt.Println("boot:", step)
	}

	sum := run.Summary
	fmt.Printf("\nserved %d/%d requests, mean response %.0f cycles\n",
		sum.Served, sum.Total, sum.MeanRT)
	fmt.Printf("executed %d instructions in %d cycles (CPI %.2f)\n",
		run.Result.Instret, run.Result.Cycles,
		float64(run.Result.Cycles)/float64(run.Result.Instret))

	core := run.Chip.Core(0)
	fmt.Printf("IL1 miss rate: %.2f%%\n", core.Hierarchy().L1I().Stats().MissRate()*100)
	fmt.Printf("monitor records verified: %v\n", indra.MonitorRecordMix(run))
	fmt.Printf("violations: %d (legitimate traffic never trips the behaviour checks)\n",
		len(run.Violations()))
}
