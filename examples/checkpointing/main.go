// Checkpointing: run the same service and the same
// rollback-every-other-request attack pattern under all four memory
// backup schemes (Table 3 of the paper) and compare their costs — the
// delta engine's point is visible directly: it moves two orders of
// magnitude fewer backup granules than page-granular checkpointing and
// recovers orders of magnitude faster than an update log.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"

	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/workload"
)

func main() {
	params := workload.MustByName("httpd")
	prog, err := params.BuildProgram()
	if err != nil {
		log.Fatal(err)
	}

	// Alternate legitimate requests with crash payloads that detonate
	// only after a full request's worth of work — every other request
	// is rolled back with realistic damage to undo.
	legit := params.GenRequests(5, 1)
	build := func() *netsim.Port {
		var stream []netsim.Request
		for _, rq := range legit {
			cp := rq
			cp.Payload = append([]byte(nil), rq.Payload...)
			stream = append(stream, cp, attack.NewDoSLateCrash())
		}
		return netsim.NewPort(stream)
	}

	schemes := []chip.SchemeKind{
		chip.SchemeSoftwarePageCopy,
		chip.SchemeHWVirtualCopy,
		chip.SchemeUpdateLog,
		chip.SchemeDelta,
	}

	fmt.Printf("%-20s %14s %12s %14s %12s %10s\n",
		"scheme", "backup cyc", "backup ops", "recover cyc", "recover ops", "mean RT")
	for _, sk := range schemes {
		cfg := chip.DefaultConfig()
		cfg.Scheme = sk
		ch, err := chip.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		port := build()
		if _, err := ch.LaunchService(0, "httpd", prog, port); err != nil {
			log.Fatal(err)
		}
		if _, err := ch.Run(0); err != nil {
			log.Fatal(err)
		}
		ov := ch.Process(0).Ckpt.Overhead()
		fmt.Printf("%-20s %14d %12d %14d %12d %10.0f\n",
			sk, ov.BackupCycles, ov.BackupOps, ov.RecoveryCycles, ov.RecoveryOps,
			port.Summarize().MeanRT)
	}

	fmt.Println("\nThe delta engine backs up only the cache lines that were actually")
	fmt.Println("modified (Figure 15: ~25% of the lines in touched pages), and its")
	fmt.Println("rollback is deferred — bitvector ORs now, line restores amortized")
	fmt.Println("into the next request's execution. No page is ever copied.")
}
