// Selfhealing: the paper's headline demo. A vulnerable service is hit
// by live exploits — a stack smash, injected shellcode, a function
// pointer hijack, and DoS crash/hang payloads — between legitimate
// requests. The resurrector detects each one, rolls the service back
// by exactly one request, and the legitimate clients never notice.
//
//	go run ./examples/selfhealing
package main

import (
	"fmt"
	"log"

	"indra"
	"indra/internal/attack"
	"indra/internal/chip"
)

func main() {
	cfg := chip.DefaultConfig()
	cfg.Recovery.InstrBudget = 2_000_000 // liveness check for the hang payload
	// Hybrid recovery (Figure 8): the fptr hijack is a *dormant* attack —
	// its corrupting store looks like a normal request, so micro rollback
	// cannot undo it once committed. A slow-paced macro (application)
	// checkpoint plus escalation after consecutive failures repairs it.
	// With period 3, the macro checkpoint lands after the three opening
	// legitimate requests — before the hijack poisons the dispatch
	// table — so escalation restores a clean image. (A macro checkpoint
	// taken *after* a dormant corruption would capture it; the paper
	// makes the same healthy-state assumption in Section 3.3.2.)
	cfg.Recovery.MacroPeriod = 3
	cfg.Recovery.ConsecutiveFailLimit = 1

	run, err := indra.RunService("httpd", indra.Options{
		Chip:     &cfg,
		Requests: 6,
		Attacks: []attack.Kind{
			attack.StackSmash,
			attack.InjectCode,
			attack.FptrHijack,
			attack.DoSCrash,
			attack.DoSHang,
		},
		AttackAfter: 3, // exploits arrive amid legitimate traffic
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== request log ===")
	for _, r := range run.Port.Records() {
		status := "✓"
		if r.Outcome.String() != "served" {
			status = "✗"
		}
		fmt.Printf("%s #%-2d %-13s -> %s\n", status, r.ID, r.Label, r.Outcome)
	}

	fmt.Println("\n=== resurrector detections ===")
	for _, v := range run.Violations() {
		fmt.Printf("%-20s at pc=%08x target=%08x\n", v.Kind, v.Rec.PC, v.Rec.Target)
	}

	rec := run.Recovery()
	fmt.Printf("\nrecoveries: %d micro, %d macro, %d liveness kills\n",
		rec.MicroRecoveries, rec.MacroRecoveries, rec.BudgetKills)

	legitServed, legitTotal := 0, 0
	for _, r := range run.Port.Records() {
		if r.Label == "legit" {
			legitTotal++
			if r.Outcome.String() == "served" {
				legitServed++
			}
		}
	}
	fmt.Printf("\nlegitimate requests served: %d/%d — the service revived after every exploit\n",
		legitServed, legitTotal)
}
