// Multicore: two services on two resurrectee cores, one resurrector
// monitoring both. Attacks against one service are detected, rolled
// back and never disturb the bystander — the asymmetric configuration
// scales to "the rest of the processor cores" as the paper puts it.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/workload"
)

func main() {
	cfg := chip.DefaultConfig()
	cfg.Resurrectees = 2
	ch, err := chip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Core 1: a DNS-like service under attack.
	bind := workload.MustByName("bind")
	bindProg, err := bind.BuildProgram()
	if err != nil {
		log.Fatal(err)
	}
	legit := bind.GenRequests(4, 1)
	smash, err := attack.NewStackSmash(bindProg)
	if err != nil {
		log.Fatal(err)
	}
	stream := []netsim.Request{legit[0], legit[1], smash, legit[2], legit[3]}
	bindPort := netsim.NewPort(stream)
	if _, err := ch.LaunchService(0, "bind", bindProg, bindPort); err != nil {
		log.Fatal(err)
	}

	// Core 2: an NFS-like bystander.
	nfs := workload.MustByName("nfs")
	nfsProg, err := nfs.BuildProgram()
	if err != nil {
		log.Fatal(err)
	}
	nfsPort := netsim.NewPort(nfs.GenRequests(3, 2))
	if _, err := ch.LaunchService(1, "nfs", nfsProg, nfsPort); err != nil {
		log.Fatal(err)
	}

	if _, err := ch.Run(0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== core 1: bind (under attack) ===")
	for _, r := range bindPort.Records() {
		fmt.Printf("  #%-2d %-12s %-8s conn=%s\n", r.ID, r.Label, r.Outcome, r.Conn())
	}
	fmt.Println("=== core 2: nfs (bystander) ===")
	for _, r := range nfsPort.Records() {
		fmt.Printf("  #%-2d %-12s %-8s conn=%s\n", r.ID, r.Label, r.Outcome, r.Conn())
	}

	fmt.Printf("\ndetections: %d; recoveries: %+v\n", len(ch.Violations()), ch.Recovery().Stats())
	b, n := bindPort.Summarize(), nfsPort.Summarize()
	fmt.Printf("bind served %d/%d (p95 %d cyc); nfs served %d/%d (p95 %d cyc) — bystander untouched\n",
		b.Served, b.Total, bindPort.Percentile(0.95), n.Served, n.Total, nfsPort.Percentile(0.95))
}
