// Asymboot: demonstrate the asymmetric boot sequence (Section 3.1.2)
// and the hardware insulation it establishes — the resurrector's
// memory is physically unreachable from the resurrectee cores, which
// is what makes the monitor remote-attack immune.
//
//	go run ./examples/asymboot
package main

import (
	"fmt"
	"log"

	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/watchdog"
	"indra/internal/workload"
)

func main() {
	cfg := chip.DefaultConfig()
	ch, err := chip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== asymmetric boot sequence ===")
	for i, step := range ch.Boot().Steps {
		fmt.Printf("%d. %s\n", i+1, step)
	}

	fmt.Println("\n=== insulation probes (hardware memory watchdog) ===")
	wd := ch.Watchdog()
	probe := func(core int, addr uint32, op watchdog.Access, what string) {
		err := wd.Check(core, addr, op)
		verdict := "ALLOWED"
		if err != nil {
			verdict = "DENIED "
		}
		fmt.Printf("%s  core %d %-7s %#010x  (%s)\n", verdict, core, op, addr, what)
	}
	resurrectorRTS := uint32(0x0000_2000)
	resurrecteeRAM := cfg.ResurrectorMemBytes + 0x1000
	probe(0, resurrectorRTS, watchdog.Read, "resurrector reads its runtime system")
	probe(0, resurrecteeRAM, watchdog.Write, "resurrector writes resurrectee memory (introspection)")
	probe(1, resurrecteeRAM, watchdog.Write, "resurrectee writes its own partition")
	probe(1, resurrectorRTS, watchdog.Read, "resurrectee tries to READ the monitor's memory")
	probe(1, resurrectorRTS, watchdog.Write, "resurrectee tries to WRITE the monitor's memory")
	probe(1, cfg.PhysMemBytes+0x1000, watchdog.Read, "resurrectee reads past physical memory")

	// Run a short service so the whole stack is exercised on top of the
	// partitions just demonstrated.
	params := workload.MustByName("bind")
	prog, err := params.BuildProgram()
	if err != nil {
		log.Fatal(err)
	}
	port := netsim.NewPort(params.GenRequests(2, 1))
	if _, err := ch.LaunchService(0, "bind", prog, port); err != nil {
		log.Fatal(err)
	}
	if _, err := ch.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nservice ran on the insulated platform: %d/%d served, watchdog checked %d accesses (%d violations)\n",
		port.Summarize().Served, port.Summarize().Total, wd.Checks(), wd.Violations())
}
