package indra

import (
	"fmt"
	"strings"

	"indra/internal/asm"
	"indra/internal/chip"
	"indra/internal/fleet"
	"indra/internal/netsim"
	"indra/internal/parallel"
	"indra/internal/workload"
)

// This file runs the fleet-resilience experiment: M independent INDRA
// chips behind a load balancer, attacked by propagating campaigns,
// under each pluggable recovery policy (internal/fleet). It answers
// the question the paper's single-chip evaluation leaves open — what
// the revivable architecture buys at cluster scale when recovered
// nodes can be re-infected — and reports per-policy availability,
// MTTR, and re-infection exposure.

// FleetPolicies lists the recovery policies the experiment compares,
// in report order.
var FleetPolicies = []string{"reactive", "rejuvenation", "tmr"}

// FleetCampaigns lists the attack campaigns, in report order.
var FleetCampaigns = []string{"worm", "dos-resurrector", "burst"}

// fleetPolicy builds a recovery policy by registry name.
func fleetPolicy(name string) (fleet.Policy, error) {
	switch name {
	case "reactive":
		return fleet.NewReactive(), nil
	case "rejuvenation":
		return fleet.NewRejuvenation(3), nil
	case "tmr":
		return fleet.NewTMR(), nil
	}
	return nil, fmt.Errorf("unknown fleet policy %q (have %s)", name, strings.Join(FleetPolicies, ", "))
}

// fleetCampaign builds an attack campaign by registry name. The worm
// propagates through httpd (stream index 1); the resurrector DoS pins
// node 0; seeds derive from the experiment seed so the key fully
// determines the run.
func fleetCampaign(name string, seed uint32) (fleet.Campaign, error) {
	switch name {
	case "worm":
		return fleet.NewWorm(1, 2), nil
	case "dos-resurrector":
		return fleet.NewResurrectorDoS(0, uint64(seed)), nil
	case "burst":
		return fleet.NewBurst(3, uint64(seed)+101), nil
	}
	return nil, fmt.Errorf("unknown fleet campaign %q (have %s)", name, strings.Join(FleetCampaigns, ", "))
}

// fleetRounds derives the fleet clock from the request knob: three
// rounds per requested unit, two legitimate requests per service
// stream per round.
func fleetRounds(o ExpOptions) (rounds, batch int) { return 3 * o.Requests, 2 }

// FleetCell assembles the fleet for one campaign x policy cell — every
// node serving all six services, warm-stamped out of a per-cell
// booter, streams cut from the experiment seed. Tests use it to replay
// a cell and dump node snapshots; Fleet() runs it for every pairing.
func FleetCell(o ExpOptions, campaign, policy string) (*fleet.Fleet, *WarmBooter, error) {
	o = o.fill()
	nodes := o.FleetNodes
	if nodes == 0 {
		nodes = 3
	}
	if nodes < 1 || nodes > 64 {
		return nil, nil, fmt.Errorf("fleet: node count %d out of range 1..64", nodes)
	}
	pol, err := fleetPolicy(policy)
	if err != nil {
		return nil, nil, err
	}
	camp, err := fleetCampaign(campaign, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	names := workload.Names()
	cfg := DefaultChipConfig()
	cfg.Resurrectees = len(names)
	// Hang payloads must die by liveness budget well inside a round.
	cfg.Recovery.InstrBudget = 1_000_000

	booter := NewWarmBooter()
	boot := func(node int) (*chip.Chip, []*netsim.Port, []*asm.Program, error) {
		ncfg := cfg
		camp.Arm(node, &ncfg)
		return booter.BootNode(names, o.Scale, ncfg)
	}

	rounds, batch := fleetRounds(o)
	streams := make([][]netsim.Request, len(names))
	for s, name := range names {
		params := workload.MustByName(name)
		if o.Scale != 1.0 {
			params = params.Scale(o.Scale)
		}
		streams[s] = params.GenRequests(rounds*batch, o.Seed)
	}
	f, err := fleet.New(fleet.Config{
		Nodes:    nodes,
		Services: names,
		Streams:  streams,
		Rounds:   rounds,
		Batch:    batch,
		Policy:   pol,
		Campaign: camp,
		Boot:     boot,
		Run:      o.RunLoop,
		Workers:  o.Workers,
		Meter:    o.Meter,
	})
	if err != nil {
		return nil, nil, err
	}
	return f, booter, nil
}

// FleetRow is one campaign x policy cell's aggregate outcome.
type FleetRow struct {
	Campaign string
	Policy   string
	Res      fleet.Result
	// Warm is the cell's warm-boot cache tally: one miss per distinct
	// node platform, everything else — including every rejuvenation
	// reboot after the first cycle — a hit.
	Warm WarmBootStats
}

// FleetResult holds the full campaign x policy matrix.
type FleetResult struct {
	Nodes  int
	Rounds int
	Batch  int
	Rows   []FleetRow
}

// Fleet runs the fleet-resilience experiment: every attack campaign
// against every recovery policy (or just o.FleetPolicy when set), each
// cell an independent cluster simulation fanned out on the pool.
func Fleet(o ExpOptions) (*FleetResult, error) {
	o = o.fill()
	policies := FleetPolicies
	if o.FleetPolicy != "" {
		if _, err := fleetPolicy(o.FleetPolicy); err != nil {
			return nil, err
		}
		policies = []string{o.FleetPolicy}
	}
	type spec struct{ campaign, policy string }
	var cells []spec
	for _, c := range FleetCampaigns {
		for _, p := range policies {
			cells = append(cells, spec{c, p})
		}
	}
	rows, err := parallel.Run(o.pool(), cells, func(_ int, c spec) (FleetRow, error) {
		f, booter, err := FleetCell(o, c.campaign, c.policy)
		if err != nil {
			return FleetRow{}, err
		}
		res, err := f.Run()
		if err != nil {
			return FleetRow{}, err
		}
		return FleetRow{Campaign: c.campaign, Policy: c.policy, Res: *res, Warm: booter.Stats()}, nil
	})
	if err != nil {
		return nil, err
	}
	rounds, batch := fleetRounds(o)
	nodes := o.FleetNodes
	if nodes == 0 {
		nodes = 3
	}
	return &FleetResult{Nodes: nodes, Rounds: rounds, Batch: batch, Rows: rows}, nil
}

// Format renders the experiment as text.
func (r *FleetResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet resilience: %d nodes x %d services, %d rounds x %d requests/stream\n",
		r.Nodes, len(workload.Names()), r.Rounds, r.Batch)
	fmt.Fprintf(&b, "%-16s %-13s %7s %8s %7s %9s %5s %6s %6s %9s %8s\n",
		"campaign", "policy", "avail%", "mttr-rd", "infect", "reinf-rd", "lost", "recov", "eject", "chip-rec", "warm h/m")
	for _, row := range r.Rows {
		res := row.Res
		fmt.Fprintf(&b, "%-16s %-13s %7.2f %8.1f %7d %9d %5d %6d %6d %9d %8s\n",
			row.Campaign, row.Policy,
			res.Availability()*100, res.MTTR(),
			res.Infections, res.ReinfectedRounds, res.Lost(),
			res.Recoveries, res.Ejections, res.ChipRecoveries,
			fmt.Sprintf("%d/%d", row.Warm.Hits, row.Warm.Misses))
	}
	return b.String()
}
