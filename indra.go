// Package indra reproduces INDRA — "An Integrated Framework for
// Dependable and Revivable Architectures Using Multicore Processors"
// (Shi, Lee, Falk, Ghosh; ISCA 2006) — as a simulation library.
//
// INDRA turns a multicore into an asymmetric security architecture: a
// privileged *resurrector* core, insulated from the network by a
// hardware memory watchdog, monitors the *resurrectee* cores that run
// network services. Monitoring is software consuming a hardware trace
// FIFO (call/return, code origin, control transfer inspections);
// recovery is a delta-page checkpoint engine that backs up only dirty
// cache lines and rolls a compromised service back by exactly one
// network request, on demand, without copying pages.
//
// The package wires the full simulated system (SRV32 cores, caches,
// TLBs, DRAM, OS-lite, network) and exposes one-call service runs:
//
//	run, err := indra.RunService("httpd", indra.Options{Requests: 8})
//	fmt.Println(run.Summary.MeanRT)
//
// Experiment reproduction for every table and figure in the paper's
// evaluation lives in experiments.go (see DESIGN.md for the index).
package indra

import (
	"fmt"

	"indra/internal/asm"
	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/monitor"
	"indra/internal/netsim"
	"indra/internal/obs"
	"indra/internal/oslite"
	"indra/internal/recovery"
	"indra/internal/workload"
)

// Options configures a service run. The zero value selects the paper's
// default platform (Table 4, 32-entry FIFO and CAM, delta checkpoint,
// monitoring on) with 8 legitimate requests at 1/10 workload scale.
type Options struct {
	// Chip overrides the platform configuration; nil uses defaults.
	Chip *chip.Config
	// Requests is the number of legitimate requests (default 8).
	Requests int
	// Seed makes the request stream deterministic (default 1).
	Seed uint32
	// Scale multiplies request length (1.0 = the calibrated 1/10-paper
	// scale; 10 = the paper's full instruction intervals).
	Scale float64
	// Attacks are injected after the AttackAfter-th legitimate request.
	Attacks []attack.Kind
	// AttackAfter defaults to half the legitimate requests.
	AttackAfter int
	// Uniform sends every legitimate request to handler UniformSlot
	// instead of the service's weighted mix (experiment control).
	Uniform     bool
	UniformSlot int
	// MaxInstructions caps the run (0 = a generous default).
	MaxInstructions uint64
	// Obs receives the run's metrics and trace events (nil = observation
	// off; the default obs.Nop sink keeps output byte-identical).
	Obs obs.Sink
	// ObsSuite, when non-nil, registers this run as one experiment cell:
	// a fresh collector is created under a configuration-derived key.
	// Takes precedence over Obs.
	ObsSuite *obs.Suite
	// MetricsEvery snapshots the metrics registry every N executed
	// instructions (0 = end-of-run snapshot only).
	MetricsEvery uint64
	// RunLoop, when non-nil, replaces the single chip.Run call that
	// drives the booted chip to completion. It may return a different
	// chip than it was given (one restored from a snapshot); the run's
	// summary is then read from that chip's port. Observability sinks
	// are not carried across a snapshot restore, so runs that attach
	// Obs/ObsSuite should not also segment through snapshots.
	RunLoop RunLoopFunc
	// Warm, when non-nil, boots the chip from the booter's cached
	// post-boot snapshot instead of cold-booting (identical output,
	// lower wall-clock cost). Ignored when Obs or ObsSuite is set:
	// observability wiring cannot ride a snapshot.
	Warm *WarmBooter
}

// RunLoopFunc drives a booted chip until its services halt. It returns
// the chip that finished the run — the same one, or a replacement
// restored from a snapshot — plus the accumulated result: Instret
// summed across segments; Cycles, Violations and Halted from the final
// segment (they are absolute chip state, not per-call deltas).
type RunLoopFunc func(ch *chip.Chip, maxInstr uint64) (*chip.Chip, chip.RunResult, error)

func (o Options) withDefaults() Options {
	if o.Requests == 0 {
		o.Requests = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.AttackAfter == 0 {
		o.AttackAfter = o.Requests / 2
	}
	if o.MaxInstructions == 0 {
		o.MaxInstructions = 400_000_000
	}
	if o.Chip == nil {
		cfg := chip.DefaultConfig()
		o.Chip = &cfg
	}
	return o
}

// ServiceRun is the outcome of one simulated service run.
type ServiceRun struct {
	Name    string
	Params  workload.Params
	Program *asm.Program
	Chip    *chip.Chip
	Port    *netsim.Port
	Summary netsim.Summary
	Result  chip.RunResult
}

// Release recycles the run's chip memory into the shared pool. Call it
// after the last read of Chip state (counters, cache stats, monitor
// records); the experiment suites do this at the end of every cell so
// the next cell's chip reuses the buffers instead of zeroing fresh
// ones. Using Chip after Release panics.
func (r *ServiceRun) Release() { r.Chip.Release() }

// RunService builds the named service (ftpd, httpd, bind, sendmail,
// imap, nfs), boots a chip, feeds it the request stream and runs to
// completion.
func RunService(name string, opts Options) (*ServiceRun, error) {
	params, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return RunWorkload(params, opts)
}

// RunWorkload is RunService for explicit (possibly custom) parameters.
func RunWorkload(params workload.Params, opts Options) (*ServiceRun, error) {
	opts = opts.withDefaults()
	if opts.Scale != 1.0 {
		params = params.Scale(opts.Scale)
	}

	// The chip config is copied before observation is attached: callers
	// (and the isolated-chip runner) share one *chip.Config across runs,
	// and each run needs its own per-cell sink.
	cfg := *opts.Chip
	if opts.MetricsEvery != 0 {
		cfg.MetricsEvery = opts.MetricsEvery
	}
	if opts.Obs != nil {
		cfg.Obs = opts.Obs
	}

	// Boot first (warm from a cached snapshot when possible, cold
	// otherwise), then enqueue the request stream: the service only
	// reads its port while running, so a post-launch chip with an empty
	// port is a valid boot image for any stream.
	var (
		prog *asm.Program
		ch   *chip.Chip
		port *netsim.Port
		err  error
	)
	if opts.Warm != nil && opts.Obs == nil && opts.ObsSuite == nil {
		ch, port, prog, err = opts.Warm.boot(params, opts.Scale, cfg)
		if err != nil {
			return nil, err
		}
	} else {
		prog, err = params.BuildProgram()
		if err != nil {
			return nil, err
		}
		if opts.ObsSuite != nil {
			cfg.Obs = opts.ObsSuite.Cell(obsCellKey(params.Name, opts, cfg))
		}
		ch, err = chip.New(cfg)
		if err != nil {
			return nil, err
		}
		port = netsim.NewPort(nil)
		if _, err := ch.LaunchService(0, params.Name, prog, port); err != nil {
			return nil, err
		}
	}

	var reqs []netsim.Request
	if opts.Uniform {
		reqs = params.GenUniformRequests(opts.Requests, opts.UniformSlot, opts.Seed)
	} else {
		reqs = params.GenRequests(opts.Requests, opts.Seed)
	}

	if len(opts.Attacks) > 0 {
		cut := opts.AttackAfter
		if cut > len(reqs) {
			cut = len(reqs)
		}
		stream := append([]netsim.Request{}, reqs[:cut]...)
		for _, kind := range opts.Attacks {
			seq, err := attack.Sequence(kind, prog)
			if err != nil {
				return nil, err
			}
			stream = append(stream, seq...)
		}
		stream = append(stream, reqs[cut:]...)
		reqs = stream
	}
	port.Enqueue(reqs...)
	var res chip.RunResult
	if opts.RunLoop != nil {
		var final *chip.Chip
		final, res, err = opts.RunLoop(ch, opts.MaxInstructions)
		if final != nil {
			ch = final
			if p := ch.ActivePort(0); p != nil {
				port = p
			}
		}
	} else {
		res, err = ch.Run(opts.MaxInstructions)
	}
	if err != nil {
		return nil, fmt.Errorf("indra: %s run: %w", params.Name, err)
	}
	return &ServiceRun{
		Name:    params.Name,
		Params:  params,
		Program: prog,
		Chip:    ch,
		Port:    port,
		Summary: port.Summarize(),
		Result:  res,
	}, nil
}

// Violations returns the monitor detections of a run.
func (r *ServiceRun) Violations() []*monitor.Violation { return r.Chip.Violations() }

// Recovery returns the recovery manager statistics.
func (r *ServiceRun) Recovery() recovery.Stats { return r.Chip.Recovery().Stats() }

// Process returns the service process.
func (r *ServiceRun) Process() *oslite.Process { return r.Chip.Process(0) }

// DefaultChipConfig exposes the paper's platform configuration for
// callers that tweak one knob.
func DefaultChipConfig() chip.Config { return chip.DefaultConfig() }

// obsCellKey derives a deterministic experiment-cell key from the
// scalar knobs that distinguish cells within and across experiments.
// Cells that agree on every listed knob (and therefore on their whole
// simulation) may share a key; the suite disambiguates duplicates by
// content, so the rendered output stays canonical either way.
func obsCellKey(service string, o Options, cfg chip.Config) string {
	return fmt.Sprintf(
		"%s/scheme=%s/mon=%t/fifo=%d/cam=%d/bpred=%d/line=%d/moncall=%d/eager=%t/reboot=%t/slots=%d/res=%d/req=%d/seed=%d/scale=%g/atk=%d/uni=%t-%d",
		service, cfg.Scheme, cfg.Monitoring, cfg.FIFOEntries, cfg.CAMSize, cfg.BPredEntries,
		cfg.Checkpoint.LineBytes, cfg.MonitorCosts.Call, cfg.EagerRollback, cfg.RebootRecovery,
		cfg.Resurrectees, cfg.Resurrectors,
		o.Requests, o.Seed, o.Scale, len(o.Attacks), o.Uniform, o.UniformSlot)
}
