package indra

import (
	"fmt"
	"strings"

	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/netsim"
)

// Detection latency: how long a malicious request lives — from its
// delivery to the completed rollback. The paper's timing argument
// (Section 3.2.5) bounds the monitor's lag by the FIFO depth and the
// sync rule; this experiment measures the end-to-end consequence.

// LatencyRow is one attack class's detection + recovery latency.
type LatencyRow struct {
	Attack attack.Kind
	// Cycles from request delivery to completed rollback.
	Cycles uint64
	// ShareOfRequest relates the latency to a normal request's
	// response time (how much malicious work runs before containment).
	ShareOfRequest float64
}

// LatencyResult measures per-class detection+recovery latency.
type LatencyResult struct {
	Service string
	MeanRT  float64 // mean legit response time for reference
	Rows    []LatencyRow
}

// DetectionLatency runs each attack class against a service and
// measures the malicious request's lifetime.
func DetectionLatency(o ExpOptions) (*LatencyResult, error) {
	o = o.fill()
	const service = "httpd"
	res := &LatencyResult{Service: service}

	for _, kind := range attack.Kinds() {
		cfg := chip.DefaultConfig()
		cfg.Recovery.InstrBudget = 1_000_000
		run, err := RunService(service, Options{
			Chip:        &cfg,
			Requests:    3,
			Scale:       o.Scale,
			Seed:        o.Seed,
			Attacks:     []attack.Kind{kind},
			AttackAfter: 2,
		})
		if err != nil {
			return nil, err
		}
		res.MeanRT = run.Summary.MeanRT
		for _, rec := range run.Port.Records() {
			if rec.Outcome != netsim.Aborted {
				continue
			}
			row := LatencyRow{Attack: kind, Cycles: rec.RespondAt - rec.RecvAt}
			if res.MeanRT > 0 {
				row.ShareOfRequest = float64(row.Cycles) / res.MeanRT
			}
			res.Rows = append(res.Rows, row)
			break // first aborted request is the injected exploit
		}
	}
	return res, nil
}

// Format renders the latencies.
func (r *LatencyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection + rollback latency per exploit class (%s; mean legit RT %.0f cyc)\n",
		r.Service, r.MeanRT)
	fmt.Fprintf(&b, "%-14s %14s %16s\n", "attack", "cycles", "vs legit req")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %14d %15.2fx\n", row.Attack, row.Cycles, row.ShareOfRequest)
	}
	return b.String()
}
