package indra

import (
	"fmt"
	"strings"

	"indra/internal/attack"
	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/parallel"
)

// Detection latency: how long a malicious request lives — from its
// delivery to the completed rollback. The paper's timing argument
// (Section 3.2.5) bounds the monitor's lag by the FIFO depth and the
// sync rule; this experiment measures the end-to-end consequence.

// LatencyRow is one attack class's detection + recovery latency.
type LatencyRow struct {
	Attack attack.Kind
	// Cycles from request delivery to completed rollback.
	Cycles uint64
	// ShareOfRequest relates the latency to a normal request's
	// response time (how much malicious work runs before containment).
	ShareOfRequest float64
}

// LatencyResult measures per-class detection+recovery latency.
type LatencyResult struct {
	Service string
	MeanRT  float64 // mean legit response time for reference
	Rows    []LatencyRow
}

// DetectionLatency runs each attack class against a service and
// measures the malicious request's lifetime. Each class is an
// independent cell.
func DetectionLatency(o ExpOptions) (*LatencyResult, error) {
	o = o.fill()
	const service = "httpd"

	type out struct {
		rows   []LatencyRow
		meanRT float64
	}
	outs, err := parallel.Run(o.pool(), attack.Kinds(), func(_ int, kind attack.Kind) (out, error) {
		cfg := chip.DefaultConfig()
		cfg.Recovery.InstrBudget = 1_000_000
		run, err := RunService(service, Options{
			Chip:        &cfg,
			Requests:    3,
			Scale:       o.Scale,
			Seed:        o.Seed,
			Attacks:     []attack.Kind{kind},
			AttackAfter: 2,
			RunLoop:     o.RunLoop,
			Warm:        o.Warm,
		})
		if err != nil {
			return out{}, err
		}
		c := out{meanRT: run.Summary.MeanRT}
		for _, rec := range run.Port.Records() {
			if rec.Outcome != netsim.Aborted {
				continue
			}
			row := LatencyRow{Attack: kind, Cycles: rec.RespondAt - rec.RecvAt}
			if c.meanRT > 0 {
				row.ShareOfRequest = float64(row.Cycles) / c.meanRT
			}
			c.rows = append(c.rows, row)
			break // first aborted request is the injected exploit
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	res := &LatencyResult{Service: service}
	for _, c := range outs {
		res.MeanRT = c.meanRT // the serial loop kept the last class's mean
		res.Rows = append(res.Rows, c.rows...)
	}
	return res, nil
}

// Format renders the latencies.
func (r *LatencyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection + rollback latency per exploit class (%s; mean legit RT %.0f cyc)\n",
		r.Service, r.MeanRT)
	fmt.Fprintf(&b, "%-14s %14s %16s\n", "attack", "cycles", "vs legit req")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %14d %15.2fx\n", row.Attack, row.Cycles, row.ShareOfRequest)
	}
	return b.String()
}
