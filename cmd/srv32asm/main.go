// Command srv32asm assembles and disassembles SRV32 programs, and can
// dump the generated source of the built-in synthetic services.
//
//	srv32asm prog.s             assemble, print symbols and sizes
//	srv32asm -d prog.s          assemble then disassemble
//	srv32asm -gen httpd         print the generated httpd service source
package main

import (
	"flag"
	"fmt"
	"os"

	"indra/internal/asm"
	"indra/internal/workload"
)

func main() {
	var (
		disasm = flag.Bool("d", false, "disassemble after assembling")
		gen    = flag.String("gen", "", "print the generated source of a built-in service")
	)
	flag.Parse()

	if *gen != "" {
		p, err := workload.ByName(*gen)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(p.GenerateSource())
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: srv32asm [-d] prog.s | srv32asm -gen <service>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("text %6d bytes @ %#x\n", len(prog.Text), prog.TextBase)
	fmt.Printf("data %6d bytes @ %#x\n", len(prog.Data), prog.DataBase)
	fmt.Printf("entry %#x; %d functions, %d exports\n", prog.Entry, len(prog.Funcs), len(prog.Exports))
	fmt.Println("symbols:")
	for _, s := range asm.SymbolsByAddr(prog) {
		fmt.Println("  " + s)
	}
	if *disasm {
		fmt.Println()
		fmt.Print(asm.Disassemble(prog))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "srv32asm: "+format+"\n", args...)
	os.Exit(1)
}
