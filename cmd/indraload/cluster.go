// Cluster scaling sweep: -cluster-sweep "1,2,4,8" boots, for each N,
// an in-process router (internal/cluster) over N freshly started
// indrasrv workers on loopback listeners, drives the standard
// open-loop arrival process against the router, and prints one row per
// N with aggregate throughput and the speedup over the first N.
//
// Every arrival gets a globally unique seed, so every accepted request
// is a distinct cell — a real simulation, never a cache hit or a
// single-flight coalesce. That measures what the cluster actually
// scales (simulation capacity), where a repeated-key workload would
// mostly measure the result cache.
//
// Two worker flavors:
//
//   - real (default): each worker executes actual experiment cells.
//     Aggregate throughput scales with the machine's spare cores —
//     on a single-core host the workers all contend for one CPU and
//     the sweep shows flat scaling; that is the machine, not the
//     router.
//   - synthetic (-synthetic 50ms): each worker's runner sleeps for the
//     given duration instead of simulating, so a worker is pure
//     capacity (slots x 1/duration) and the sweep isolates the router
//     tier's scaling from host CPU count. Deterministic output, no
//     simulation.
//
// -kill-mid additionally kills the last worker halfway through every
// N>1 phase, so the printed rows include the failover penalty: the
// router's health probes eject the dead worker and the survivors
// absorb its keys.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"indra"
	"indra/internal/cluster"
	"indra/internal/serve"
)

// sweepFlags are the cluster-sweep knobs (active with -cluster-sweep).
type sweepFlags struct {
	sizes      *string
	workerConc *int
	synthetic  *time.Duration
	killMid    *bool
	benchOut   *string
	vnodes     *int
}

func registerClusterSweepFlags() sweepFlags {
	return sweepFlags{
		sizes:      flag.String("cluster-sweep", "", "comma-separated cluster sizes (e.g. 1,2,4,8): boot an in-process router over N workers per size and print a scaling table"),
		workerConc: flag.Int("worker-concurrency", 1, "concurrent cells per worker in the cluster sweep"),
		synthetic:  flag.Duration("synthetic", 0, "cluster sweep: replace simulation with a sleep of this length (isolates router scaling from host CPU count)"),
		killMid:    flag.Bool("kill-mid", false, "cluster sweep: kill the last worker halfway through every N>1 phase"),
		benchOut:   flag.String("bench-out", "", "cluster sweep: write the scaling table as JSON to this file"),
		vnodes:     flag.Int("sweep-vnodes", 128, "cluster sweep: virtual nodes per worker on the router's hash ring"),
	}
}

// sweepRow is one cluster size's outcome.
type sweepRow struct {
	Workers  int     `json:"workers"`
	Sent     int64   `json:"sent"`
	OK       int64   `json:"ok"`
	Busy     int64   `json:"busy_429"`
	Deadline int64   `json:"deadline_504"`
	Other    int64   `json:"other"`
	OKPerSec float64 `json:"ok_per_s"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	Speedup  float64 `json:"speedup"`
}

// runClusterSweep executes the -cluster-sweep phases and returns the
// process exit code.
func runClusterSweep(cf sweepFlags, lc loadConfig, requests int) int {
	var sizes []int
	for _, s := range strings.Split(*cf.sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "indraload: bad -cluster-sweep size %q\n", s)
			return 2
		}
		sizes = append(sizes, n)
	}

	mode := "real"
	if *cf.synthetic > 0 {
		mode = fmt.Sprintf("synthetic(%s)", *cf.synthetic)
	}
	fmt.Printf("cluster sweep: mode=%s rate=%.1f/s duration=%s worker-concurrency=%d kill-mid=%v\n",
		mode, lc.rate, lc.duration, *cf.workerConc, *cf.killMid)
	fmt.Printf("%8s %8s %8s %8s %8s %8s %9s %9s %9s %9s\n",
		"workers", "sent", "ok", "429", "504", "other", "ok/s", "p50(ms)", "p99(ms)", "speedup")

	client := &http.Client{Timeout: lc.timeout}
	var seedCounter atomic.Uint32 // unique seed per arrival, across all phases
	var rows []sweepRow
	clean := true
	for _, n := range sizes {
		ph, err := runSweepPhase(client, n, cf, lc, requests, &seedCounter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "indraload: cluster size %d: %v\n", n, err)
			return 1
		}
		row := summarize(n, ph, lc.duration)
		if len(rows) > 0 && rows[0].OKPerSec > 0 {
			row.Speedup = row.OKPerSec / rows[0].OKPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
		fmt.Printf("%8d %8d %8d %8d %8d %8d %9.1f %9.1f %9.1f %8.2fx\n",
			row.Workers, row.Sent, row.OK, row.Busy, row.Deadline, row.Other,
			row.OKPerSec, row.P50MS, row.P99MS, row.Speedup)
		for _, line := range ph.workerRows() {
			fmt.Println(line)
		}
		if ph.other > 0 || ph.transport > 0 {
			clean = false
		}
	}

	if *cf.benchOut != "" {
		if err := writeBench(*cf.benchOut, mode, lc, *cf.workerConc, rows); err != nil {
			fmt.Fprintf(os.Stderr, "indraload: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "indraload: wrote %s\n", *cf.benchOut)
	}
	if !clean {
		fmt.Fprintln(os.Stderr, "indraload: unexpected responses (outside 2xx/429/504) or transport errors")
		return 1
	}
	return 0
}

// runSweepPhase boots N workers and a router, runs one load phase
// against the router, and tears the cluster down (drain, or kill for
// the -kill-mid victim).
func runSweepPhase(client *http.Client, n int, cf sweepFlags, lc loadConfig, requests int, seeds *atomic.Uint32) (*phase, error) {
	srvCfg := serve.Config{Workers: *cf.workerConc, CellWorkers: 1}
	if *cf.synthetic > 0 {
		naplen := *cf.synthetic
		srvCfg.DisableWarmBoot = true
		srvCfg.Runner = func(k indra.CellKey) (string, error) {
			time.Sleep(naplen)
			return "synthetic " + k.String() + "\n", nil
		}
	}

	srvs := make([]*serve.Server, 0, n)
	workers := make([]cluster.Worker, 0, n)
	for i := 0; i < n; i++ {
		s := serve.New(srvCfg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = s.Serve(l) }()
		srvs = append(srvs, s)
		workers = append(workers, cluster.NewHTTPWorker("http://"+l.Addr().String(), nil))
	}
	router, err := cluster.New(cluster.Config{
		Vnodes:        *cf.vnodes,
		ProbeInterval: 200 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 2,
	}, workers)
	if err != nil {
		return nil, err
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = router.Serve(rl) }()

	var killT *time.Timer
	killed := -1
	if *cf.killMid && n > 1 {
		killed = n - 1
		killT = time.AfterFunc(lc.duration/2, func() { _ = srvs[killed].Kill() })
	}

	exps := indra.Experiments()
	nextKey := func(i int64) string {
		return indra.CellKey{
			Experiment: exps[int(i)%len(exps)],
			Requests:   requests,
			Scale:      1,
			Seed:       seeds.Add(1),
		}.String()
	}
	ph := runPhase(client, "http://"+rl.Addr().String(), nextKey, lc)

	if killT != nil {
		killT.Stop()
	}
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := router.Drain(dctx); err != nil {
		return nil, fmt.Errorf("router drain: %w", err)
	}
	for i, s := range srvs {
		_, derr := s.Drain(dctx)
		if derr != nil && i != killed {
			return nil, fmt.Errorf("worker %d drain: %w", i, derr)
		}
	}
	return ph, nil
}

func summarize(n int, p *phase, dur time.Duration) sweepRow {
	p.mu.Lock()
	defer p.mu.Unlock()
	latencies := append([]time.Duration(nil), p.latencies...)
	for i := 1; i < len(latencies); i++ { // insertion sort: reuse pct's sorted contract
		for j := i; j > 0 && latencies[j] < latencies[j-1]; j-- {
			latencies[j], latencies[j-1] = latencies[j-1], latencies[j]
		}
	}
	return sweepRow{
		Workers:  n,
		Sent:     p.sent,
		OK:       p.ok,
		Busy:     p.busy,
		Deadline: p.deadline,
		Other:    p.other + p.transport,
		OKPerSec: float64(p.ok) / dur.Seconds(),
		P50MS:    pct(latencies, 0.50),
		P99MS:    pct(latencies, 0.99),
	}
}

// writeBench records the scaling table as JSON (BENCH_pr9.json in CI).
func writeBench(path, mode string, lc loadConfig, workerConc int, rows []sweepRow) error {
	doc := map[string]any{
		"cluster_scaling": map[string]any{
			"mode":               mode,
			"rate_per_s":         lc.rate,
			"duration_s":         lc.duration.Seconds(),
			"worker_concurrency": workerConc,
			"rows":               rows,
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
