// Command indraload is the open-loop load generator for indrasrv: it
// fires cell requests at a fixed arrival rate regardless of response
// latency (so queueing shows up as latency and 429s, not a slowed-down
// client), and reports throughput, status mix, and latency
// percentiles.
//
// Usage:
//
//	indraload -url http://127.0.0.1:8080 -rate 20 -duration 10s
//	indraload -url http://127.0.0.1:8080 -sweep 5,10,20,50 -duration 5s
//	indraload -keys "fig9/req=2/scale=1/seed=1,table4/req=1/scale=1/seed=1"
//
// Without -keys the standard experiment suite is used, one cell per
// registered experiment at -requests legitimate requests. The sweep
// mode runs each arrival rate for -duration and prints one summary row
// per rate — the serving layer's saturation curve.
//
// Exit status is non-zero when any response falls outside the expected
// set (2xx success, 429 backpressure, 504 deadline) or a transport
// error occurs, so CI can use a short run as a smoke gate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indra"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "indrasrv base URL")
		rate        = flag.Float64("rate", 20, "open-loop arrival rate, requests/second")
		sweep       = flag.String("sweep", "", "comma-separated arrival rates; run each for -duration (overrides -rate)")
		duration    = flag.Duration("duration", 10*time.Second, "load duration per phase")
		keysFlag    = flag.String("keys", "", "comma-separated canonical cell keys (default: the standard suite)")
		requests    = flag.Int("requests", 2, "requests per cell when building the default suite keys")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		maxInflight = flag.Int("max-inflight", 256, "open-loop in-flight bound; arrivals beyond it are counted as dropped")
	)
	flag.Parse()

	keys := buildKeys(*keysFlag, *requests)
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "indraload: no cell keys")
		os.Exit(2)
	}

	rates := []float64{*rate}
	if *sweep != "" {
		rates = rates[:0]
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "indraload: bad -sweep rate %q\n", f)
				os.Exit(2)
			}
			rates = append(rates, v)
		}
	}

	client := &http.Client{Timeout: *timeout}
	fmt.Printf("%8s %8s %8s %8s %8s %8s %9s %9s %9s %9s\n",
		"rate/s", "sent", "ok", "429", "504", "other", "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)")
	clean := true
	for _, r := range rates {
		ph := runPhase(client, *url, keys, r, *duration, *maxInflight)
		fmt.Println(ph.row(r))
		if ph.other > 0 || ph.transport > 0 {
			clean = false
		}
	}
	if !clean {
		fmt.Fprintln(os.Stderr, "indraload: unexpected responses (outside 2xx/429/504) or transport errors")
		os.Exit(1)
	}
}

// buildKeys parses -keys, or derives the standard-suite key set: one
// cell per registered experiment at the given request count.
func buildKeys(flagVal string, requests int) []string {
	if flagVal != "" {
		var keys []string
		for _, s := range strings.Split(flagVal, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if _, err := indra.ParseCellKey(s); err != nil {
				fmt.Fprintf(os.Stderr, "indraload: %v\n", err)
				os.Exit(2)
			}
			keys = append(keys, s)
		}
		return keys
	}
	var keys []string
	for _, id := range indra.Experiments() {
		keys = append(keys, indra.CellKey{Experiment: id, Requests: requests, Scale: 1, Seed: 1}.String())
	}
	return keys
}

// phase accumulates one load phase's outcomes.
type phase struct {
	mu        sync.Mutex
	latencies []time.Duration
	sent      int64
	ok        int64
	busy      int64 // 429
	deadline  int64 // 504
	other     int64 // unexpected statuses
	transport int64 // client-side errors
	dropped   int64 // arrivals shed at the in-flight bound
}

// runPhase fires arrivals at rate/s for dur against url, round-robin
// over keys, with at most maxInflight outstanding.
func runPhase(client *http.Client, url string, keys []string, rate float64, dur time.Duration, maxInflight int) *phase {
	p := &phase{}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(dur)

	inflight := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	var next atomic.Int64
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			select {
			case inflight <- struct{}{}:
			default:
				p.dropped++
				continue
			}
			key := keys[int(next.Add(1)-1)%len(keys)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-inflight }()
				p.fire(client, url, key)
			}()
		}
	}
	wg.Wait()
	return p
}

// fire issues one POST /v1/cell and files the outcome.
func (p *phase) fire(client *http.Client, url, key string) {
	body := fmt.Sprintf(`{"key":%q}`, key)
	start := time.Now()
	resp, err := client.Post(url+"/v1/cell", "application/json", bytes.NewBufferString(body))
	elapsed := time.Since(start)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sent++
	if err != nil {
		p.transport++
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	p.latencies = append(p.latencies, elapsed)
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		p.ok++
	case resp.StatusCode == http.StatusTooManyRequests:
		p.busy++
	case resp.StatusCode == http.StatusGatewayTimeout:
		p.deadline++
	default:
		p.other++
	}
}

// pct returns the q-quantile of the sorted latencies in milliseconds.
func pct(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func (p *phase) row(rate float64) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	sort.Slice(p.latencies, func(i, j int) bool { return p.latencies[i] < p.latencies[j] })
	otherish := p.other + p.transport
	return fmt.Sprintf("%8.1f %8d %8d %8d %8d %8d %9.1f %9.1f %9.1f %9.1f",
		rate, p.sent, p.ok, p.busy, p.deadline, otherish,
		pct(p.latencies, 0.50), pct(p.latencies, 0.90), pct(p.latencies, 0.99), pct(p.latencies, 1.0))
}
