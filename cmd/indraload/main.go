// Command indraload is the open-loop load generator for indrasrv: it
// fires cell requests at a fixed arrival rate regardless of response
// latency (so queueing shows up as latency and 429s, not a slowed-down
// client), and reports throughput, status mix, and latency
// percentiles.
//
// Usage:
//
//	indraload -url http://127.0.0.1:8080 -rate 20 -duration 10s
//	indraload -url http://127.0.0.1:8080 -sweep 5,10,20,50 -duration 5s
//	indraload -keys "fig9/req=2/scale=1/seed=1,table4/req=1/scale=1/seed=1"
//	indraload -cluster-sweep 1,2,4,8 -rate 40 -duration 5s
//
// Without -keys the standard experiment suite is used, one cell per
// registered experiment at -requests legitimate requests. The sweep
// mode runs each arrival rate for -duration and prints one summary row
// per rate — the serving layer's saturation curve.
//
// A 429 response is retried up to -retry-429 times, sleeping for the
// server's Retry-After hint (capped at -retry-wait-max) instead of
// hammering a saturated server; the recorded latency includes the
// backoff. When responses carry an X-Indra-Worker header (a cluster
// router answered), outcomes are additionally attributed per worker,
// so a single misbehaving cluster member shows up in its own
// percentile row rather than hiding in the aggregate.
//
// The cluster sweep (-cluster-sweep, see cluster.go) boots an
// in-process router over N workers for each N, fires unique-seed
// arrivals (every request a real simulation — the result cache cannot
// flatter the scaling), and prints an aggregate-throughput scaling
// table.
//
// Exit status is non-zero when any response falls outside the expected
// set (2xx success, 429 backpressure, 504 deadline) or a transport
// error occurs, so CI can use a short run as a smoke gate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indra"
)

func main() {
	var (
		url          = flag.String("url", "http://127.0.0.1:8080", "indrasrv base URL")
		rate         = flag.Float64("rate", 20, "open-loop arrival rate, requests/second")
		sweep        = flag.String("sweep", "", "comma-separated arrival rates; run each for -duration (overrides -rate)")
		duration     = flag.Duration("duration", 10*time.Second, "load duration per phase")
		keysFlag     = flag.String("keys", "", "comma-separated canonical cell keys (default: the standard suite)")
		requests     = flag.Int("requests", 2, "requests per cell when building the default suite keys")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		maxInflight  = flag.Int("max-inflight", 256, "open-loop in-flight bound; arrivals beyond it are counted as dropped")
		retry429     = flag.Int("retry-429", 1, "retries after a 429, honoring its Retry-After hint (0 disables)")
		retryWaitMax = flag.Duration("retry-wait-max", 2*time.Second, "cap on one Retry-After backoff sleep")
	)
	cf := registerClusterSweepFlags()
	flag.Parse()

	lc := loadConfig{
		rate:         *rate,
		duration:     *duration,
		timeout:      *timeout,
		maxInflight:  *maxInflight,
		retry429:     *retry429,
		retryWaitMax: *retryWaitMax,
	}

	if *cf.sizes != "" {
		os.Exit(runClusterSweep(cf, lc, *requests))
	}

	keys := buildKeys(*keysFlag, *requests)
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "indraload: no cell keys")
		os.Exit(2)
	}

	rates := []float64{*rate}
	if *sweep != "" {
		rates = rates[:0]
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "indraload: bad -sweep rate %q\n", f)
				os.Exit(2)
			}
			rates = append(rates, v)
		}
	}

	client := &http.Client{Timeout: *timeout}
	fmt.Printf("%8s %8s %8s %8s %8s %8s %9s %9s %9s %9s\n",
		"rate/s", "sent", "ok", "429", "504", "other", "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)")
	clean := true
	for _, r := range rates {
		lc.rate = r
		ph := runPhase(client, *url, roundRobin(keys), lc)
		fmt.Println(ph.row(fmt.Sprintf("%8.1f", r)))
		for _, line := range ph.workerRows() {
			fmt.Println(line)
		}
		if ph.other > 0 || ph.transport > 0 {
			clean = false
		}
	}
	if !clean {
		fmt.Fprintln(os.Stderr, "indraload: unexpected responses (outside 2xx/429/504) or transport errors")
		os.Exit(1)
	}
}

// loadConfig bundles the open-loop client knobs shared by every phase.
type loadConfig struct {
	rate         float64
	duration     time.Duration
	timeout      time.Duration
	maxInflight  int
	retry429     int
	retryWaitMax time.Duration
}

// roundRobin cycles arrivals over a fixed key set (the steady-state
// serving workload: repeat requests exercise the result cache).
func roundRobin(keys []string) func(int64) string {
	return func(i int64) string { return keys[int(i)%len(keys)] }
}

// buildKeys parses -keys, or derives the standard-suite key set: one
// cell per registered experiment at the given request count.
func buildKeys(flagVal string, requests int) []string {
	if flagVal != "" {
		var keys []string
		for _, s := range strings.Split(flagVal, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if _, err := indra.ParseCellKey(s); err != nil {
				fmt.Fprintf(os.Stderr, "indraload: %v\n", err)
				os.Exit(2)
			}
			keys = append(keys, s)
		}
		return keys
	}
	var keys []string
	for _, id := range indra.Experiments() {
		keys = append(keys, indra.CellKey{Experiment: id, Requests: requests, Scale: 1, Seed: 1}.String())
	}
	return keys
}

// workerTally attributes outcomes to the cluster member that answered
// (the X-Indra-Worker response header); requests answered without the
// header — a bare indrasrv, or a router-level rejection — land on
// "(origin)".
type workerTally struct {
	sent      int64
	ok        int64
	busy      int64
	deadline  int64
	server5xx int64 // 5xx other than 504: the worker misbehaved
	other     int64
	latencies []time.Duration
}

// phase accumulates one load phase's outcomes.
type phase struct {
	mu        sync.Mutex
	latencies []time.Duration
	sent      int64
	ok        int64
	busy      int64 // 429 (after retries)
	deadline  int64 // 504
	other     int64 // unexpected statuses
	transport int64 // client-side errors
	dropped   int64 // arrivals shed at the in-flight bound
	retries   int64 // 429s retried after their Retry-After hint
	perWorker map[string]*workerTally
}

// runPhase fires arrivals at cfg.rate/s for cfg.duration against url,
// key i drawn from nextKey(i), with at most cfg.maxInflight
// outstanding.
func runPhase(client *http.Client, url string, nextKey func(int64) string, cfg loadConfig) *phase {
	p := &phase{perWorker: make(map[string]*workerTally)}
	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(cfg.duration)

	inflight := make(chan struct{}, cfg.maxInflight)
	var wg sync.WaitGroup
	var next atomic.Int64
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			select {
			case inflight <- struct{}{}:
			default:
				p.dropped++
				continue
			}
			key := nextKey(next.Add(1) - 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-inflight }()
				p.fire(client, url, key, cfg)
			}()
		}
	}
	wg.Wait()
	return p
}

// retryAfter parses a 429's Retry-After hint (delay-seconds form),
// capped at max; absent or malformed hints back off 100ms.
func retryAfter(resp *http.Response, max time.Duration) time.Duration {
	wait := 100 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			wait = time.Duration(secs) * time.Second
		}
	}
	if wait > max {
		wait = max
	}
	return wait
}

// fire issues one POST /v1/cell — retrying a 429 after its Retry-After
// hint, up to cfg.retry429 times — and files the outcome, attributed
// to the worker that answered when the response names one.
func (p *phase) fire(client *http.Client, url, key string, cfg loadConfig) {
	body := fmt.Sprintf(`{"key":%q}`, key)
	start := time.Now()
	var resp *http.Response
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = client.Post(url+"/v1/cell", "application/json", bytes.NewBufferString(body))
		if err != nil || resp.StatusCode != http.StatusTooManyRequests || attempt >= cfg.retry429 {
			break
		}
		wait := retryAfter(resp, cfg.retryWaitMax)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		p.mu.Lock()
		p.retries++
		p.mu.Unlock()
		time.Sleep(wait)
	}
	// Latency includes any backoff sleeps: it is what a client obeying
	// the server's hint actually waited for the answer.
	elapsed := time.Since(start)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sent++
	if err != nil {
		p.transport++
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	p.latencies = append(p.latencies, elapsed)

	worker := resp.Header.Get("X-Indra-Worker")
	if worker == "" {
		worker = "(origin)"
	}
	t := p.perWorker[worker]
	if t == nil {
		t = &workerTally{}
		p.perWorker[worker] = t
	}
	t.sent++
	t.latencies = append(t.latencies, elapsed)

	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		p.ok++
		t.ok++
	case resp.StatusCode == http.StatusTooManyRequests:
		p.busy++
		t.busy++
	case resp.StatusCode == http.StatusGatewayTimeout:
		p.deadline++
		t.deadline++
	case resp.StatusCode >= 500:
		p.other++
		t.server5xx++
	default:
		p.other++
		t.other++
	}
}

// pct returns the q-quantile of the sorted latencies in milliseconds.
func pct(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func (p *phase) row(label string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	sort.Slice(p.latencies, func(i, j int) bool { return p.latencies[i] < p.latencies[j] })
	otherish := p.other + p.transport
	return fmt.Sprintf("%s %8d %8d %8d %8d %8d %9.1f %9.1f %9.1f %9.1f",
		label, p.sent, p.ok, p.busy, p.deadline, otherish,
		pct(p.latencies, 0.50), pct(p.latencies, 0.90), pct(p.latencies, 0.99), pct(p.latencies, 1.0))
}

// workerRows renders one attribution row per answering worker —
// emitted only when a router identified workers, so single-server runs
// keep their old output shape.
func (p *phase) workerRows() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.perWorker) == 0 {
		return nil
	}
	if _, originOnly := p.perWorker["(origin)"]; originOnly && len(p.perWorker) == 1 {
		return nil
	}
	ids := make([]string, 0, len(p.perWorker))
	for id := range p.perWorker {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rows := make([]string, 0, len(ids))
	for _, id := range ids {
		t := p.perWorker[id]
		sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })
		rows = append(rows, fmt.Sprintf("  └ %-28s sent=%-6d ok=%-6d 429=%-4d 504=%-4d 5xx=%-4d p50=%.1fms p99=%.1fms",
			id, t.sent, t.ok, t.busy, t.deadline, t.server5xx, pct(t.latencies, 0.50), pct(t.latencies, 0.99)))
	}
	return rows
}
