// Command indrasim boots the INDRA platform, runs one of the six
// network services against a request stream (optionally laced with
// exploits), and reports what the resurrector saw and how the service
// fared.
//
// Examples:
//
//	indrasim -service httpd -requests 10
//	indrasim -service bind -requests 8 -attack stack-smash,dos-crash
//	indrasim -service nfs -scheme software-pagecopy -monitor=false
//	indrasim -service ftpd,httpd,bind -isolate -workers 3
//	indrasim -service httpd -inject fifo-corrupt:1e-3,monitor-stall:0.01:200000
//	indrasim -service bind -inject monitor-stall:1 -heartbeat 20000 -degrade fail-open
//	indrasim -service httpd -metrics -metrics-every 100000 -trace-out httpd.json
//	indrasim -service imap -snapshot-every 100000 -snapshot-out imap.snap
//	indrasim -snapshot-in imap.snap
//	indrasim -service httpd -attack stack-smash -rewind -snapshot-every 10000
//
// -metrics prints the run's metrics snapshots as JSON (-metrics-every N
// adds a mid-run snapshot every N instructions); -trace-out writes a
// Chrome trace-event file loadable in Perfetto or chrome://tracing.
// Observation never perturbs the simulation: output with and without
// these flags is byte-identical.
//
// Snapshots make long runs crash-resumable and violations replayable.
// -snapshot-out writes the chip's final state; with -snapshot-every N
// the file is instead rewritten (atomically) every N executed
// instructions, so a killed run loses at most N instructions — resume
// it with -snapshot-in, which restores the chip (request stream
// included) and runs it to completion. A restored run's output is
// byte-identical to the uninterrupted run (the resume-equivalence
// harness holds that property). A snapshot that fails to load — short
// file, corruption, format version skew — is a hard error: indrasim
// prints the decoder's diagnostic and exits non-zero. -rewind (with
// -snapshot-every N) keeps the last snapshot taken before the first
// monitor violation and replays from it after the run, reporting how
// far before the violation the clean state was; with -snapshot-out the
// pre-violation image is written there for -snapshot-in iteration.
//
// -inject arms protection-layer fault sites (site:rate[:stallCycles]
// [@from-to], comma-separated; sites: fifo-corrupt, fifo-drop,
// ckpt-bitvec, ckpt-line, monitor-stall, dram-read). -fifo-policy,
// -heartbeat and -degrade select the resurrector's self-protection
// posture; injected faults and protection events are reported after
// the run.
//
// A comma-separated -service list is time-multiplexed on one
// resurrectee core by default; with -isolate each service instead gets
// its own simulated chip and the chips run concurrently on -workers
// goroutines (default GOMAXPROCS), reported in launch order.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"indra"
	"indra/internal/attack"
	"indra/internal/checkpoint"
	"indra/internal/chip"
	"indra/internal/faultinject"
	"indra/internal/netsim"
	"indra/internal/obs"
	"indra/internal/parallel"
	"indra/internal/snapshot"
	"indra/internal/workload"
)

func main() {
	var (
		service  = flag.String("service", "httpd", "service (comma-separate several to time-multiplex them on one core): "+strings.Join(workload.Names(), ", "))
		requests = flag.Int("requests", 8, "legitimate requests")
		seed     = flag.Uint("seed", 1, "request stream seed")
		scale    = flag.Float64("scale", 1.0, "workload scale (1.0 = 1/10 paper)")
		attacks  = flag.String("attack", "", "comma-separated attack kinds: stack-smash, inject-code, fptr-hijack, dos-crash, dos-hang")
		scheme   = flag.String("scheme", "indra-delta", "backup scheme: indra-delta, software-pagecopy, hw-virtual-copy, update-log, none")
		monitor  = flag.Bool("monitor", true, "enable the resurrector's monitoring")
		fifoSz   = flag.Int("fifo", 32, "trace FIFO entries")
		camSz    = flag.Int("cam", 32, "code-origin CAM entries")
		budget   = flag.Uint64("budget", 2_000_000, "per-request instruction budget (DoS liveness)")
		verbose  = flag.Bool("v", false, "print boot sequence and per-request records")
		isolate  = flag.Bool("isolate", false, "give each -service its own chip instead of time-multiplexing one core")
		workers  = flag.Int("workers", 0, "concurrent chips with -isolate (0 = GOMAXPROCS)")

		metrics      = flag.Bool("metrics", false, "print the end-of-run metrics snapshot(s) as JSON")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
		metricsEvery = flag.Uint64("metrics-every", 0, "snapshot the metrics registry every N executed instructions (0 = end of run only)")

		snapOut   = flag.String("snapshot-out", "", "write a chip-state snapshot file (at end of run, or every -snapshot-every instructions)")
		snapIn    = flag.String("snapshot-in", "", "resume a run from a snapshot file instead of booting")
		snapEvery = flag.Uint64("snapshot-every", 0, "snapshot the chip every N executed instructions (crash-resumable; needs -snapshot-out or -rewind)")
		rewind    = flag.Bool("rewind", false, "after the run, replay from the last pre-violation snapshot (needs -snapshot-every)")

		inject     = flag.String("inject", "", "fault plans, site:rate[:stallCycles][@from-to] comma-separated (sites: fifo-corrupt, fifo-drop, ckpt-bitvec, ckpt-line, monitor-stall, dram-read)")
		injectSeed = flag.Uint64("inject-seed", 1, "base seed for -inject plans")
		fifoPolicy = flag.String("fifo-policy", "stall", "full-FIFO backpressure: stall (block the resurrectee) or drop (shed the record)")
		dropLimit  = flag.Uint64("fifo-drop-limit", 0, "dropped records per slot before degradation (0 = unlimited)")
		heartbeat  = flag.Uint64("heartbeat", 0, "monitor heartbeat interval in cycles (0 = disabled)")
		missLimit  = flag.Uint64("heartbeat-misses", 0, "heartbeat misses before degradation (0 = escalate but never degrade)")
		degrade    = flag.String("degrade", "fail-closed", "degradation mode: fail-closed (halt the service) or fail-open (serve unmonitored)")
		macroEvery = flag.Int("macro-period", 0, "macro checkpoint every N processed requests (0 = scheme default)")
	)
	flag.Parse()

	cfg := chip.DefaultConfig()
	cfg.Monitoring = *monitor
	cfg.FIFOEntries = *fifoSz
	cfg.CAMSize = *camSz
	cfg.Recovery.InstrBudget = *budget
	if *macroEvery > 0 {
		cfg.Recovery.MacroPeriod = *macroEvery
	}
	switch *scheme {
	case "indra-delta":
		cfg.Scheme = chip.SchemeDelta
	case "software-pagecopy":
		cfg.Scheme = chip.SchemeSoftwarePageCopy
	case "hw-virtual-copy":
		cfg.Scheme = chip.SchemeHWVirtualCopy
	case "update-log":
		cfg.Scheme = chip.SchemeUpdateLog
	case "none":
		cfg.Scheme = chip.SchemeNone
	default:
		fatalf("unknown scheme %q", *scheme)
	}

	plans, err := faultinject.ParsePlans(*inject, *injectSeed)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Faults = plans
	switch *fifoPolicy {
	case "stall":
		cfg.FIFOPolicy = chip.FIFOStall
	case "drop":
		cfg.FIFOPolicy = chip.FIFODrop
	default:
		fatalf("unknown -fifo-policy %q (stall or drop)", *fifoPolicy)
	}
	cfg.FIFODropLimit = *dropLimit
	cfg.HeartbeatInterval = *heartbeat
	cfg.HeartbeatMissLimit = *missLimit
	switch *degrade {
	case "fail-closed":
		cfg.Degradation = chip.DegradeFailClosed
	case "fail-open":
		cfg.Degradation = chip.DegradeFailOpen
	default:
		fatalf("unknown -degrade %q (fail-closed or fail-open)", *degrade)
	}

	var kinds []attack.Kind
	if *attacks != "" {
		for _, a := range strings.Split(*attacks, ",") {
			kinds = append(kinds, attack.Kind(strings.TrimSpace(a)))
		}
	}

	// Observability: one collector for the run (single-service or
	// multiplexed; with -isolate each chip would need its own sink —
	// use indrabench -metrics-dir for per-cell collection instead).
	var col *obs.Collector
	if *metrics || *traceOut != "" || *metricsEvery > 0 {
		if *isolate {
			fatalf("-metrics/-trace-out/-metrics-every are per-chip; not supported with -isolate (use indrabench -metrics-dir)")
		}
		col = obs.NewCollector()
		if *traceOut != "" {
			col.EnableTracing()
		}
		cfg.Obs = col
		cfg.MetricsEvery = *metricsEvery
	}

	services := strings.Split(*service, ",")
	if *snapOut != "" || *snapIn != "" || *snapEvery > 0 || *rewind {
		if len(services) > 1 || *isolate {
			fatalf("snapshot flags drive a single-service run (no -isolate, no service list)")
		}
		if *rewind && *snapEvery == 0 {
			fatalf("-rewind needs -snapshot-every N (the snapshot cadence bounds the replay window)")
		}
		if *snapIn != "" && col != nil {
			fatalf("-snapshot-in restores a chip without observability wiring; drop -metrics/-trace-out/-metrics-every")
		}
		if *snapEvery > 0 && *snapOut == "" && !*rewind {
			fatalf("-snapshot-every needs -snapshot-out (periodic file) or -rewind (in-memory replay)")
		}
	}
	var snap *snapshotter
	if *snapEvery > 0 {
		snap = &snapshotter{every: *snapEvery, out: *snapOut, rewind: *rewind}
	}

	if *snapIn != "" {
		resumeFromSnapshot(*snapIn, snap, *snapOut, *verbose)
		return
	}

	if len(services) > 1 {
		if *isolate {
			runIsolated(cfg, services, *requests, uint32(*seed), *scale, *workers, kinds)
		} else {
			runMultiplexed(cfg, services, *requests, uint32(*seed), *scale)
			writeObs(col, *metrics, *traceOut)
		}
		return
	}

	var loop indra.RunLoopFunc
	if snap != nil {
		loop = snap.loop
	}
	run, err := indra.RunService(*service, indra.Options{
		Chip:     &cfg,
		Requests: *requests,
		Seed:     uint32(*seed),
		Scale:    *scale,
		Attacks:  kinds,
		RunLoop:  loop,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *snapOut != "" && snap == nil {
		writeSnapshotFile(*snapOut, snapshot.Save(run.Chip))
	}

	if *verbose {
		fmt.Println("boot sequence:")
		for _, s := range run.Chip.Boot().Steps {
			fmt.Println("  " + s)
		}
		fmt.Println()
	}

	report(run, *verbose)
	if snap != nil && snap.rewind {
		snap.replay(*snapOut)
	}
	writeObs(col, *metrics, *traceOut)
}

// report prints the standard post-run summary for a single-service run
// (boot sequence and observability output are the caller's business).
func report(run *indra.ServiceRun, verbose bool) {
	sum := run.Summary
	fmt.Printf("service %s: %d requests (%d served, %d aborted, %d undelivered)\n",
		run.Name, sum.Total, sum.Served, sum.Aborted, sum.Undelivered)
	fmt.Printf("executed %d instructions in %d cycles (CPI %.2f); mean response %.0f cycles\n",
		run.Result.Instret, run.Result.Cycles,
		float64(run.Result.Cycles)/float64(run.Result.Instret), sum.MeanRT)

	cs := run.Chip.Core(0).Stats()
	il1 := run.Chip.Core(0).Hierarchy().L1I().Stats()
	fmt.Printf("IL1 miss rate %.2f%%; %d origin checks after CAM filtering; FIFO stalls %d cyc; sync stalls %d cyc\n",
		il1.MissRate()*100, cs.OriginChecks, cs.TraceStall, cs.SyncStall)

	if p := run.Process(); p != nil && p.Ckpt != nil {
		if eng, ok := p.Ckpt.(*checkpoint.Engine); ok {
			st := eng.Stats()
			fmt.Printf("delta engine: %d line backups, %d lazy restores, %d pages tracked\n",
				st.LineBackups, st.LineRestores, eng.TrackedPages())
		} else {
			ov := p.Ckpt.Overhead()
			fmt.Printf("%s: backup %d cyc (%d ops), recovery %d cyc (%d ops)\n",
				p.Ckpt.Name(), ov.BackupCycles, ov.BackupOps, ov.RecoveryCycles, ov.RecoveryOps)
		}
	}

	if vs := run.Violations(); len(vs) > 0 {
		fmt.Printf("\nresurrector detections (%d):\n", len(vs))
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
		}
	}
	rec := run.Recovery()
	if rec.MicroRecoveries+rec.MacroRecoveries > 0 {
		fmt.Printf("recoveries: %d micro, %d macro, %d liveness kills (%d cycles total)\n",
			rec.MicroRecoveries, rec.MacroRecoveries, rec.BudgetKills, rec.RecoveryCycles)
	}
	printProtection(run.Chip, verbose)

	if verbose {
		fmt.Println("\nper-request log:")
		for _, r := range run.Port.Records() {
			fmt.Printf("  #%-3d %-12s %-11s rt=%d\n", r.ID, r.Label, r.Outcome, r.ResponseTime())
		}
	}
}

// snapshotter segments a run at a fixed instruction cadence, saving
// the chip after each segment: to a file (crash-resume) and/or as the
// in-memory pre-violation image -rewind replays from.
type snapshotter struct {
	every  uint64
	out    string
	rewind bool

	preViol []byte // latest snapshot taken before any violation
}

// loop is the indra.RunLoopFunc driving a snapshotted run. The resume
// harness proves segmenting a run this way leaves output byte-identical
// to one uninterrupted chip.Run call.
func (s *snapshotter) loop(ch *chip.Chip, maxInstr uint64) (*chip.Chip, chip.RunResult, error) {
	if maxInstr == 0 {
		maxInstr = 1 << 62
	}
	var total chip.RunResult
	var ran uint64
	for {
		step := s.every
		if step > maxInstr-ran {
			step = maxInstr - ran
		}
		res, err := ch.Run(step)
		total.Instret += res.Instret
		total.Cycles, total.Violations, total.Halted = res.Cycles, res.Violations, res.Halted
		ran += res.Instret
		if err == nil { // every service halted
			s.checkpoint(ch)
			return ch, total, nil
		}
		if !errors.Is(err, chip.ErrInstrLimit) {
			return ch, total, err
		}
		s.checkpoint(ch)
		if ran >= maxInstr {
			return ch, total, err // genuine instruction-budget exhaustion
		}
	}
}

func (s *snapshotter) checkpoint(ch *chip.Chip) {
	blob := snapshot.Save(ch)
	if s.rewind && len(ch.Violations()) == 0 {
		s.preViol = blob
	}
	if s.out != "" {
		writeSnapshotFile(s.out, blob)
	}
}

// replay restores the last pre-violation snapshot and re-executes until
// the monitor fires again, reporting the replay window; with
// -snapshot-out the pre-violation image is persisted for -snapshot-in
// iteration (finer -snapshot-every, -v, -metrics, a debugger...).
func (s *snapshotter) replay(out string) {
	if s.preViol == nil {
		fmt.Println("\nrewind: no pre-violation snapshot (first violation predates the first snapshot; lower -snapshot-every)")
		return
	}
	ch, err := snapshot.Load(s.preViol)
	if err != nil {
		fatalf("rewind: reload pre-violation snapshot: %v", err)
	}
	if len(ch.Violations()) != 0 {
		fatalf("rewind: pre-violation snapshot already holds violations")
	}
	var replayed uint64
	for {
		res, err := ch.Run(1_000)
		replayed += res.Instret
		if vs := ch.Violations(); len(vs) > 0 {
			fmt.Printf("\nrewind: violation reproduced %d instructions after the pre-violation snapshot:\n", replayed)
			for _, v := range vs {
				fmt.Printf("  %s\n", v)
			}
			break
		}
		if err == nil {
			fmt.Printf("\nrewind: replay halted after %d instructions without re-detecting (violation window exceeds one -snapshot-every period?)\n", replayed)
			break
		}
		if !errors.Is(err, chip.ErrInstrLimit) {
			fatalf("rewind replay: %v", err)
		}
	}
	if out != "" {
		writeSnapshotFile(out, s.preViol)
		fmt.Printf("rewind: pre-violation snapshot written to %s (resume it with -snapshot-in)\n", out)
	}
}

// resumeFromSnapshot restores a chip (request stream included) from a
// snapshot file and runs it to completion. An unreadable, corrupt or
// version-skewed snapshot is a hard error: the decoder's diagnostic is
// printed and indrasim exits non-zero.
func resumeFromSnapshot(path string, snap *snapshotter, snapOut string, verbose bool) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatalf("-snapshot-in: %v", err)
	}
	ch, err := snapshot.Load(blob)
	if err != nil {
		fatalf("-snapshot-in %s: %v", path, err)
	}
	port := ch.ActivePort(0)
	if port == nil {
		fatalf("-snapshot-in %s: snapshot holds no service on core 0", path)
	}
	name := "resumed"
	if p := ch.Process(0); p != nil {
		name = p.Name
	}
	fmt.Printf("resumed %s from %s (%d bytes)\n", name, path, len(blob))

	var res chip.RunResult
	if snap != nil {
		ch, res, err = snap.loop(ch, 0)
		if p := ch.ActivePort(0); p != nil {
			port = p
		}
	} else {
		res, err = ch.Run(0)
	}
	if err != nil {
		fatalf("%s resume run: %v", name, err)
	}
	if snapOut != "" && snap == nil {
		writeSnapshotFile(snapOut, snapshot.Save(ch))
	}
	report(&indra.ServiceRun{
		Name:    name,
		Chip:    ch,
		Port:    port,
		Summary: port.Summarize(),
		Result:  res,
	}, verbose)
	if snap != nil && snap.rewind {
		snap.replay(snapOut)
	}
}

// writeSnapshotFile writes atomically (tmp + rename) so a crash mid-
// write never leaves a torn snapshot where a resumable one stood.
func writeSnapshotFile(path string, blob []byte) {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		fatalf("write snapshot: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		fatalf("write snapshot: %v", err)
	}
}

// writeObs emits the collected metrics and trace after a run; no-op
// when observation was not armed.
func writeObs(col *obs.Collector, metrics bool, traceOut string) {
	if col == nil {
		return
	}
	if metrics {
		b, err := col.RenderJSON()
		if err != nil {
			fatalf("render metrics: %v", err)
		}
		fmt.Println(string(b))
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := col.Tracer().WriteJSON(f); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("write trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", col.Tracer().Len(), traceOut)
	}
}

// runIsolated boots one chip per service and runs them concurrently on
// the experiment runner's worker pool; results print in launch order
// whatever the completion order.
func runIsolated(cfg chip.Config, services []string, requests int, seed uint32, scale float64, workers int, kinds []attack.Kind) {
	meter := parallel.NewMeter()
	pool := parallel.Pool{Workers: workers, Meter: meter}
	runs, err := parallel.Run(pool, services, func(i int, name string) (*indra.ServiceRun, error) {
		return indra.RunService(strings.TrimSpace(name), indra.Options{
			Chip:     &cfg,
			Requests: requests,
			Seed:     seed + uint32(i),
			Scale:    scale,
			Attacks:  kinds,
		})
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("isolated: %d services, one chip each:\n", len(runs))
	for _, run := range runs {
		sum := run.Summary
		fmt.Printf("  %-10s served %d/%d, mean RT %.0f cycles (p95 %d), %d violations\n",
			run.Name, sum.Served, sum.Total, sum.MeanRT, run.Port.Percentile(0.95), len(run.Violations()))
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "runner: %s, %d worker(s)\n", meter.Stats(), w)
}

// runMultiplexed time-shares several services on one resurrectee core
// (request-grained round-robin, per-process GTS, CR3-keyed monitoring).
func runMultiplexed(cfg chip.Config, services []string, requests int, seed uint32, scale float64) {
	ch, err := chip.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	type svc struct {
		name string
		port *netsim.Port
	}
	var launched []svc
	for i, name := range services {
		name = strings.TrimSpace(name)
		params, err := workload.ByName(name)
		if err != nil {
			fatalf("%v", err)
		}
		if scale != 1.0 {
			params = params.Scale(scale)
		}
		prog, err := params.BuildProgram()
		if err != nil {
			fatalf("%v", err)
		}
		port := netsim.NewPort(params.GenRequests(requests, seed+uint32(i)))
		if _, err := ch.LaunchService(0, name, prog, port); err != nil {
			fatalf("%v", err)
		}
		launched = append(launched, svc{name, port})
	}
	if _, err := ch.Run(0); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("multiplexed %d services on one resurrectee core:\n", len(launched))
	for _, s := range launched {
		sum := s.port.Summarize()
		fmt.Printf("  %-10s served %d/%d, mean RT %.0f cycles (p95 %d)\n",
			s.name, sum.Served, sum.Total, sum.MeanRT, s.port.Percentile(0.95))
	}
	fmt.Printf("violations: %d; recoveries: %+v\n", len(ch.Violations()), ch.Recovery().Stats())
	printProtection(ch, false)
}

// printProtection reports fault-injection hits and the self-protection
// layer's activity; silent when nothing was armed and nothing fired.
func printProtection(ch *chip.Chip, verbose bool) {
	fs := ch.FaultStats()
	if hits := fs.TotalHits(); hits > 0 {
		fmt.Printf("\ninjected faults (%d):\n", hits)
		for _, site := range faultinject.Sites() {
			if st := fs[site]; st.Hits > 0 {
				fmt.Printf("  %-13s %d of %d events\n", site, st.Hits, st.Events)
			}
		}
	}
	ps := ch.ProtectionStats()
	if ps != (chip.ProtectionStats{}) {
		fmt.Printf("self-protection: %d dropped records, %d heartbeat misses, %d macro escalations, %d micro fallbacks, %d degradations\n",
			ps.DroppedRecords, ps.HeartbeatMisses, ps.MacroEscalations, ps.MicroFallbacks, ps.Degradations)
	}
	if log := ch.ProtectionLog(); len(log) > 0 && verbose {
		fmt.Println("protection events:")
		for _, e := range log {
			fmt.Println("  " + e)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "indrasim: "+format+"\n", args...)
	os.Exit(1)
}
