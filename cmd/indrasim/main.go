// Command indrasim boots the INDRA platform, runs one of the six
// network services against a request stream (optionally laced with
// exploits), and reports what the resurrector saw and how the service
// fared.
//
// Examples:
//
//	indrasim -service httpd -requests 10
//	indrasim -service bind -requests 8 -attack stack-smash,dos-crash
//	indrasim -service nfs -scheme software-pagecopy -monitor=false
//	indrasim -service ftpd,httpd,bind -isolate -workers 3
//	indrasim -service httpd -inject fifo-corrupt:1e-3,monitor-stall:0.01:200000
//	indrasim -service bind -inject monitor-stall:1 -heartbeat 20000 -degrade fail-open
//	indrasim -service httpd -metrics -metrics-every 100000 -trace-out httpd.json
//
// -metrics prints the run's metrics snapshots as JSON (-metrics-every N
// adds a mid-run snapshot every N instructions); -trace-out writes a
// Chrome trace-event file loadable in Perfetto or chrome://tracing.
// Observation never perturbs the simulation: output with and without
// these flags is byte-identical.
//
// -inject arms protection-layer fault sites (site:rate[:stallCycles]
// [@from-to], comma-separated; sites: fifo-corrupt, fifo-drop,
// ckpt-bitvec, ckpt-line, monitor-stall, dram-read). -fifo-policy,
// -heartbeat and -degrade select the resurrector's self-protection
// posture; injected faults and protection events are reported after
// the run.
//
// A comma-separated -service list is time-multiplexed on one
// resurrectee core by default; with -isolate each service instead gets
// its own simulated chip and the chips run concurrently on -workers
// goroutines (default GOMAXPROCS), reported in launch order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"indra"
	"indra/internal/attack"
	"indra/internal/checkpoint"
	"indra/internal/chip"
	"indra/internal/faultinject"
	"indra/internal/netsim"
	"indra/internal/obs"
	"indra/internal/parallel"
	"indra/internal/workload"
)

func main() {
	var (
		service  = flag.String("service", "httpd", "service (comma-separate several to time-multiplex them on one core): "+strings.Join(workload.Names(), ", "))
		requests = flag.Int("requests", 8, "legitimate requests")
		seed     = flag.Uint("seed", 1, "request stream seed")
		scale    = flag.Float64("scale", 1.0, "workload scale (1.0 = 1/10 paper)")
		attacks  = flag.String("attack", "", "comma-separated attack kinds: stack-smash, inject-code, fptr-hijack, dos-crash, dos-hang")
		scheme   = flag.String("scheme", "indra-delta", "backup scheme: indra-delta, software-pagecopy, hw-virtual-copy, update-log, none")
		monitor  = flag.Bool("monitor", true, "enable the resurrector's monitoring")
		fifoSz   = flag.Int("fifo", 32, "trace FIFO entries")
		camSz    = flag.Int("cam", 32, "code-origin CAM entries")
		budget   = flag.Uint64("budget", 2_000_000, "per-request instruction budget (DoS liveness)")
		verbose  = flag.Bool("v", false, "print boot sequence and per-request records")
		isolate  = flag.Bool("isolate", false, "give each -service its own chip instead of time-multiplexing one core")
		workers  = flag.Int("workers", 0, "concurrent chips with -isolate (0 = GOMAXPROCS)")

		metrics      = flag.Bool("metrics", false, "print the end-of-run metrics snapshot(s) as JSON")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
		metricsEvery = flag.Uint64("metrics-every", 0, "snapshot the metrics registry every N executed instructions (0 = end of run only)")

		inject     = flag.String("inject", "", "fault plans, site:rate[:stallCycles][@from-to] comma-separated (sites: fifo-corrupt, fifo-drop, ckpt-bitvec, ckpt-line, monitor-stall, dram-read)")
		injectSeed = flag.Uint64("inject-seed", 1, "base seed for -inject plans")
		fifoPolicy = flag.String("fifo-policy", "stall", "full-FIFO backpressure: stall (block the resurrectee) or drop (shed the record)")
		dropLimit  = flag.Uint64("fifo-drop-limit", 0, "dropped records per slot before degradation (0 = unlimited)")
		heartbeat  = flag.Uint64("heartbeat", 0, "monitor heartbeat interval in cycles (0 = disabled)")
		missLimit  = flag.Uint64("heartbeat-misses", 0, "heartbeat misses before degradation (0 = escalate but never degrade)")
		degrade    = flag.String("degrade", "fail-closed", "degradation mode: fail-closed (halt the service) or fail-open (serve unmonitored)")
		macroEvery = flag.Int("macro-period", 0, "macro checkpoint every N processed requests (0 = scheme default)")
	)
	flag.Parse()

	cfg := chip.DefaultConfig()
	cfg.Monitoring = *monitor
	cfg.FIFOEntries = *fifoSz
	cfg.CAMSize = *camSz
	cfg.Recovery.InstrBudget = *budget
	if *macroEvery > 0 {
		cfg.Recovery.MacroPeriod = *macroEvery
	}
	switch *scheme {
	case "indra-delta":
		cfg.Scheme = chip.SchemeDelta
	case "software-pagecopy":
		cfg.Scheme = chip.SchemeSoftwarePageCopy
	case "hw-virtual-copy":
		cfg.Scheme = chip.SchemeHWVirtualCopy
	case "update-log":
		cfg.Scheme = chip.SchemeUpdateLog
	case "none":
		cfg.Scheme = chip.SchemeNone
	default:
		fatalf("unknown scheme %q", *scheme)
	}

	plans, err := faultinject.ParsePlans(*inject, *injectSeed)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Faults = plans
	switch *fifoPolicy {
	case "stall":
		cfg.FIFOPolicy = chip.FIFOStall
	case "drop":
		cfg.FIFOPolicy = chip.FIFODrop
	default:
		fatalf("unknown -fifo-policy %q (stall or drop)", *fifoPolicy)
	}
	cfg.FIFODropLimit = *dropLimit
	cfg.HeartbeatInterval = *heartbeat
	cfg.HeartbeatMissLimit = *missLimit
	switch *degrade {
	case "fail-closed":
		cfg.Degradation = chip.DegradeFailClosed
	case "fail-open":
		cfg.Degradation = chip.DegradeFailOpen
	default:
		fatalf("unknown -degrade %q (fail-closed or fail-open)", *degrade)
	}

	var kinds []attack.Kind
	if *attacks != "" {
		for _, a := range strings.Split(*attacks, ",") {
			kinds = append(kinds, attack.Kind(strings.TrimSpace(a)))
		}
	}

	// Observability: one collector for the run (single-service or
	// multiplexed; with -isolate each chip would need its own sink —
	// use indrabench -metrics-dir for per-cell collection instead).
	var col *obs.Collector
	if *metrics || *traceOut != "" || *metricsEvery > 0 {
		if *isolate {
			fatalf("-metrics/-trace-out/-metrics-every are per-chip; not supported with -isolate (use indrabench -metrics-dir)")
		}
		col = obs.NewCollector()
		if *traceOut != "" {
			col.EnableTracing()
		}
		cfg.Obs = col
		cfg.MetricsEvery = *metricsEvery
	}

	services := strings.Split(*service, ",")
	if len(services) > 1 {
		if *isolate {
			runIsolated(cfg, services, *requests, uint32(*seed), *scale, *workers, kinds)
		} else {
			runMultiplexed(cfg, services, *requests, uint32(*seed), *scale)
			writeObs(col, *metrics, *traceOut)
		}
		return
	}

	run, err := indra.RunService(*service, indra.Options{
		Chip:     &cfg,
		Requests: *requests,
		Seed:     uint32(*seed),
		Scale:    *scale,
		Attacks:  kinds,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *verbose {
		fmt.Println("boot sequence:")
		for _, s := range run.Chip.Boot().Steps {
			fmt.Println("  " + s)
		}
		fmt.Println()
	}

	sum := run.Summary
	fmt.Printf("service %s: %d requests (%d served, %d aborted, %d undelivered)\n",
		run.Name, sum.Total, sum.Served, sum.Aborted, sum.Undelivered)
	fmt.Printf("executed %d instructions in %d cycles (CPI %.2f); mean response %.0f cycles\n",
		run.Result.Instret, run.Result.Cycles,
		float64(run.Result.Cycles)/float64(run.Result.Instret), sum.MeanRT)

	cs := run.Chip.Core(0).Stats()
	il1 := run.Chip.Core(0).Hierarchy().L1I().Stats()
	fmt.Printf("IL1 miss rate %.2f%%; %d origin checks after CAM filtering; FIFO stalls %d cyc; sync stalls %d cyc\n",
		il1.MissRate()*100, cs.OriginChecks, cs.TraceStall, cs.SyncStall)

	if p := run.Process(); p != nil && p.Ckpt != nil {
		if eng, ok := p.Ckpt.(*checkpoint.Engine); ok {
			st := eng.Stats()
			fmt.Printf("delta engine: %d line backups, %d lazy restores, %d pages tracked\n",
				st.LineBackups, st.LineRestores, eng.TrackedPages())
		} else {
			ov := p.Ckpt.Overhead()
			fmt.Printf("%s: backup %d cyc (%d ops), recovery %d cyc (%d ops)\n",
				p.Ckpt.Name(), ov.BackupCycles, ov.BackupOps, ov.RecoveryCycles, ov.RecoveryOps)
		}
	}

	if vs := run.Violations(); len(vs) > 0 {
		fmt.Printf("\nresurrector detections (%d):\n", len(vs))
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
		}
	}
	rec := run.Recovery()
	if rec.MicroRecoveries+rec.MacroRecoveries > 0 {
		fmt.Printf("recoveries: %d micro, %d macro, %d liveness kills (%d cycles total)\n",
			rec.MicroRecoveries, rec.MacroRecoveries, rec.BudgetKills, rec.RecoveryCycles)
	}
	printProtection(run.Chip, *verbose)

	if *verbose {
		fmt.Println("\nper-request log:")
		for _, r := range run.Port.Records() {
			fmt.Printf("  #%-3d %-12s %-11s rt=%d\n", r.ID, r.Label, r.Outcome, r.ResponseTime())
		}
	}
	writeObs(col, *metrics, *traceOut)
}

// writeObs emits the collected metrics and trace after a run; no-op
// when observation was not armed.
func writeObs(col *obs.Collector, metrics bool, traceOut string) {
	if col == nil {
		return
	}
	if metrics {
		b, err := col.RenderJSON()
		if err != nil {
			fatalf("render metrics: %v", err)
		}
		fmt.Println(string(b))
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := col.Tracer().WriteJSON(f); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("write trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", col.Tracer().Len(), traceOut)
	}
}

// runIsolated boots one chip per service and runs them concurrently on
// the experiment runner's worker pool; results print in launch order
// whatever the completion order.
func runIsolated(cfg chip.Config, services []string, requests int, seed uint32, scale float64, workers int, kinds []attack.Kind) {
	meter := parallel.NewMeter()
	pool := parallel.Pool{Workers: workers, Meter: meter}
	runs, err := parallel.Run(pool, services, func(i int, name string) (*indra.ServiceRun, error) {
		return indra.RunService(strings.TrimSpace(name), indra.Options{
			Chip:     &cfg,
			Requests: requests,
			Seed:     seed + uint32(i),
			Scale:    scale,
			Attacks:  kinds,
		})
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("isolated: %d services, one chip each:\n", len(runs))
	for _, run := range runs {
		sum := run.Summary
		fmt.Printf("  %-10s served %d/%d, mean RT %.0f cycles (p95 %d), %d violations\n",
			run.Name, sum.Served, sum.Total, sum.MeanRT, run.Port.Percentile(0.95), len(run.Violations()))
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "runner: %s, %d worker(s)\n", meter.Stats(), w)
}

// runMultiplexed time-shares several services on one resurrectee core
// (request-grained round-robin, per-process GTS, CR3-keyed monitoring).
func runMultiplexed(cfg chip.Config, services []string, requests int, seed uint32, scale float64) {
	ch, err := chip.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	type svc struct {
		name string
		port *netsim.Port
	}
	var launched []svc
	for i, name := range services {
		name = strings.TrimSpace(name)
		params, err := workload.ByName(name)
		if err != nil {
			fatalf("%v", err)
		}
		if scale != 1.0 {
			params = params.Scale(scale)
		}
		prog, err := params.BuildProgram()
		if err != nil {
			fatalf("%v", err)
		}
		port := netsim.NewPort(params.GenRequests(requests, seed+uint32(i)))
		if _, err := ch.LaunchService(0, name, prog, port); err != nil {
			fatalf("%v", err)
		}
		launched = append(launched, svc{name, port})
	}
	if _, err := ch.Run(0); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("multiplexed %d services on one resurrectee core:\n", len(launched))
	for _, s := range launched {
		sum := s.port.Summarize()
		fmt.Printf("  %-10s served %d/%d, mean RT %.0f cycles (p95 %d)\n",
			s.name, sum.Served, sum.Total, sum.MeanRT, s.port.Percentile(0.95))
	}
	fmt.Printf("violations: %d; recoveries: %+v\n", len(ch.Violations()), ch.Recovery().Stats())
	printProtection(ch, false)
}

// printProtection reports fault-injection hits and the self-protection
// layer's activity; silent when nothing was armed and nothing fired.
func printProtection(ch *chip.Chip, verbose bool) {
	fs := ch.FaultStats()
	if hits := fs.TotalHits(); hits > 0 {
		fmt.Printf("\ninjected faults (%d):\n", hits)
		for _, site := range faultinject.Sites() {
			if st := fs[site]; st.Hits > 0 {
				fmt.Printf("  %-13s %d of %d events\n", site, st.Hits, st.Events)
			}
		}
	}
	ps := ch.ProtectionStats()
	if ps != (chip.ProtectionStats{}) {
		fmt.Printf("self-protection: %d dropped records, %d heartbeat misses, %d macro escalations, %d micro fallbacks, %d degradations\n",
			ps.DroppedRecords, ps.HeartbeatMisses, ps.MacroEscalations, ps.MicroFallbacks, ps.Degradations)
	}
	if log := ch.ProtectionLog(); len(log) > 0 && verbose {
		fmt.Println("protection events:")
		for _, e := range log {
			fmt.Println("  " + e)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "indrasim: "+format+"\n", args...)
	os.Exit(1)
}
