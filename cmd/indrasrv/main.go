// Command indrasrv serves the INDRA experiment suite over HTTP: a
// long-running simulation-as-a-service front-end with a canonical
// cell-key result cache (single-flight), admission control, and
// /metrics observability.
//
// Usage:
//
//	indrasrv -addr :8080
//	indrasrv -addr :8080 -workers 8 -queue 32 -cell-workers 1
//
// Endpoints:
//
//	GET  /healthz          liveness (503 while draining)
//	GET  /metrics          obs registry snapshot (JSON)
//	GET  /v1/experiments   registered experiment ids
//	GET  /v1/cell?key=K    run/fetch one cell by canonical key
//	POST /v1/cell          {"key": "fig9/req=3/scale=1/seed=1"}
//	POST /v1/cells         {"cells": [K, ...]} → NDJSON as cells finish
//	POST /v1/fill          {"key": K, "output": O} peer cache fill
//
// Cluster mode (-cluster) serves the router tier instead: the same
// client surface, but every cell is consistent-hashed to its owning
// worker (given by -peers URLs and/or -local-workers in-process
// servers) with cluster-wide single-flight, health-checked failover,
// and peer cache fill. See cluster.go.
//
// A cell's output is byte-identical to `indrabench -experiment <id>`
// with the same requests/scale/seed. Identical concurrent requests
// coalesce onto one simulation; full queues answer 429 with a
// Retry-After hint; per-request deadlines answer 504. SIGTERM/SIGINT
// drains gracefully: stop accepting, finish in-flight requests, flush
// the final metrics snapshot to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"indra/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth beyond the worker slots (0 = 4x workers)")
		cellWorkers  = flag.Int("cell-workers", 1, "worker count inside each cell's own experiment fan-out (output is identical)")
		shards       = flag.Int("cache-shards", 16, "result cache shards")
		entries      = flag.Int("cache-entries", 4096, "result cache entry bound")
		timeout      = flag.Duration("timeout", 120*time.Second, "default per-request deadline")
		maxRequests  = flag.Int("max-requests", 64, "largest per-cell request count a client may ask for")
		maxScale     = flag.Float64("max-scale", 10, "largest workload scale a client may ask for")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound after SIGTERM")
		clusterMode  = flag.Bool("cluster", false, "serve the router tier instead of a worker (see -peers, -local-workers)")
	)
	cf := registerClusterFlags()
	flag.Parse()

	srvCfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CellWorkers:    *cellWorkers,
		CacheShards:    *shards,
		CacheEntries:   *entries,
		DefaultTimeout: *timeout,
		MaxRequests:    *maxRequests,
		MaxScale:       *maxScale,
	}
	if *clusterMode {
		runCluster(*addr, cf, srvCfg, *drainTimeout)
		return
	}

	srv := serve.New(srvCfg)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indrasrv: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "indrasrv: serving on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()

	select {
	case err := <-errCh:
		// Listener failure before any signal: nothing to drain.
		fmt.Fprintf(os.Stderr, "indrasrv: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight requests within
	// the drain budget, then flush the final metrics snapshot.
	fmt.Fprintf(os.Stderr, "indrasrv: draining (up to %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	snap, err := srv.Drain(dctx)
	<-errCh // Serve has returned http.ErrServerClosed by now
	if out, jerr := json.Marshal(snap); jerr == nil {
		fmt.Fprintf(os.Stderr, "indrasrv: final metrics: %s\n", out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "indrasrv: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "indrasrv: drained cleanly")
}
