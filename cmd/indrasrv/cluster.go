package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"indra/internal/cluster"
	"indra/internal/serve"
)

// clusterFlags are the router-tier knobs (active with -cluster).
type clusterFlags struct {
	peers           *string
	localWorkers    *int
	vnodes          *int
	probeInterval   *time.Duration
	failThreshold   *int
	reviveThreshold *int
	maxHops         *int
}

func registerClusterFlags() clusterFlags {
	return clusterFlags{
		peers:           flag.String("peers", "", "comma-separated worker base URLs to route across (cluster mode)"),
		localWorkers:    flag.Int("local-workers", 0, "in-process workers to spawn and route across (cluster mode)"),
		vnodes:          flag.Int("vnodes", 128, "virtual nodes per worker on the hash ring"),
		probeInterval:   flag.Duration("probe-interval", 500*time.Millisecond, "health-probe period"),
		failThreshold:   flag.Int("fail-threshold", 3, "consecutive failures before a worker is ejected from the ring"),
		reviveThreshold: flag.Int("revive-threshold", 2, "consecutive probe successes before an ejected worker is re-admitted"),
		maxHops:         flag.Int("max-hops", 3, "owner candidates tried per request (owner + failover successors)"),
	}
}

// runCluster serves the router tier: consistent-hash routing of cell
// keys across the configured workers with cluster-wide single-flight,
// health-checked failover, and peer cache fill. Workers are either
// remote indrasrv processes (-peers) or in-process servers
// (-local-workers); both can be mixed.
func runCluster(addr string, cf clusterFlags, srvCfg serve.Config, drainTimeout time.Duration) {
	var workers []cluster.Worker
	var locals []*serve.Server
	for _, u := range strings.Split(*cf.peers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workers = append(workers, cluster.NewHTTPWorker(u, nil))
		}
	}
	for i := 0; i < *cf.localWorkers; i++ {
		s := serve.New(srvCfg)
		locals = append(locals, s)
		workers = append(workers, cluster.NewLocalWorker(fmt.Sprintf("local-%d", i), s))
	}
	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "indrasrv: -cluster needs -peers and/or -local-workers")
		os.Exit(2)
	}

	router, err := cluster.New(cluster.Config{
		Vnodes:          *cf.vnodes,
		ProbeInterval:   *cf.probeInterval,
		FailThreshold:   *cf.failThreshold,
		ReviveThreshold: *cf.reviveThreshold,
		MaxHops:         *cf.maxHops,
		DefaultTimeout:  srvCfg.DefaultTimeout,
		MaxRequests:     srvCfg.MaxRequests,
		MaxScale:        srvCfg.MaxScale,
	}, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indrasrv: %v\n", err)
		os.Exit(1)
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "indrasrv: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "indrasrv: routing on %s across %d workers\n", l.Addr(), len(workers))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- router.Serve(l) }()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "indrasrv: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "indrasrv: draining router (up to %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	snap, err := router.Drain(dctx)
	<-errCh
	// Local workers drain after the router so in-flight proxied cells
	// finish first; remote peers own their own lifecycles.
	var wg sync.WaitGroup
	for _, s := range locals {
		wg.Add(1)
		go func(s *serve.Server) {
			defer wg.Done()
			_, _ = s.Drain(dctx)
		}(s)
	}
	wg.Wait()
	if out, jerr := json.Marshal(snap); jerr == nil {
		fmt.Fprintf(os.Stderr, "indrasrv: final router metrics: %s\n", out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "indrasrv: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "indrasrv: drained cleanly")
}
