// Command indrabench regenerates the tables and figures of the INDRA
// paper's evaluation (Section 4) on the simulated platform.
//
// Usage:
//
//	indrabench -experiment all
//	indrabench -experiment fig16 -requests 10 -scale 1
//	indrabench -experiment table3 -workers 1
//	indrabench -perfcheck
//	indrabench -perfcheck -update-bench
//
// Experiments: table2 table3 table4 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 fig16, or "all". Scale 1.0 is the calibrated 1/10-paper request
// length; -scale 10 restores the paper's full instruction intervals
// (slower). -faults is shorthand for -experiment faultsweep, the
// protection-layer fault-injection sweep (detection coverage and
// availability versus injection rate, per service).
//
// Every experiment fans its independent (service, config) simulation
// cells out to -workers goroutines (default GOMAXPROCS) and merges
// them in canonical order: the printed figures are byte-identical to a
// serial run, and a timing summary goes to stderr.
//
// -perfcheck switches to the benchmark-regression gate: it measures the
// standard performance suite (indra.PerfSuite), writes BENCH_pr.json,
// and fails when any cell regresses past the thresholds relative to
// BENCH_baseline.json's perf section (see internal/perf). With
// -update-bench it instead refreshes that perf section in place.
//
// -resume-dir makes long runs crash-resumable: every in-flight service
// run periodically snapshots its chip into the directory (cadence
// -resume-every executed instructions), and a rerun after a crash
// resumes each unfinished run from its last snapshot instead of
// instruction zero. Output is byte-identical either way (the
// resume-equivalence harness holds that property); completed runs
// clean their progress files up.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"indra"
	"indra/internal/obs"
	"indra/internal/parallel"
	"indra/internal/perf"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id (table2..4, fig9..16, ablation-line/cam/monitor/rollback/space, faultsweep, all)")
		faults   = flag.Bool("faults", false, "run the fault-injection sweep (shorthand for -experiment faultsweep)")
		requests = flag.Int("requests", 8, "legitimate requests per service")
		scale    = flag.Float64("scale", 1.0, "workload scale (1.0 = 1/10 paper)")
		seed     = flag.Uint("seed", 1, "request stream seed")
		workers  = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS, 1 = serial; output is identical)")
		metrics  = flag.String("metrics-dir", "", "write one metrics JSON per simulation cell plus a merged summary.json into this directory")

		resumeDir   = flag.String("resume-dir", "", "make long runs crash-resumable: periodically snapshot every in-flight service run into this directory and resume from the snapshots on restart (output is identical)")
		resumeEvery = flag.Uint64("resume-every", 0, "with -resume-dir: progress-snapshot cadence in executed instructions (0 = 2,000,000)")

		perfcheck    = flag.Bool("perfcheck", false, "run the performance suite, write -perf-out, and gate against the baseline's perf section")
		perfOut      = flag.String("perf-out", "BENCH_pr.json", "perfcheck report path")
		perfBaseline = flag.String("perf-baseline", "BENCH_baseline.json", "benchmark baseline document")
		updateBench  = flag.Bool("update-bench", false, "with -perfcheck: rewrite the baseline's perf section instead of gating")
		perfNsTol    = flag.Float64("perf-ns-threshold", 0.10, "relative ns/op regression tolerance (0.10 = fail when >10% slower)")
		perfAllocTol = flag.Float64("perf-allocs-threshold", 0, "relative allocs/op regression tolerance (0 = any increase fails)")
	)
	flag.Parse()

	if *perfcheck {
		os.Exit(runPerfCheck(*perfOut, *perfBaseline, *updateBench,
			perf.Thresholds{NsPct: *perfNsTol, AllocsPct: *perfAllocTol}))
	}

	meter := parallel.NewMeter()
	o := indra.ExpOptions{Requests: *requests, Scale: *scale, Seed: uint32(*seed), Workers: *workers, Meter: meter}
	var suite *obs.Suite
	if *metrics != "" {
		suite = obs.NewSuite()
		o.Obs = suite
	}
	var resumer *indra.Resumer
	if *resumeDir != "" {
		if *metrics != "" {
			fmt.Fprintln(os.Stderr, "indrabench: -resume-dir and -metrics-dir are exclusive (observability wiring cannot ride a snapshot restore)")
			os.Exit(2)
		}
		if err := os.MkdirAll(*resumeDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "indrabench: -resume-dir: %v\n", err)
			os.Exit(1)
		}
		resumer = &indra.Resumer{Dir: *resumeDir, Every: *resumeEvery}
		o.RunLoop = resumer.RunLoop
	}

	// The experiment registry (ids, order, and formatting) is shared
	// with the serving layer: indra.RunExperiment here prints exactly
	// the bytes `indrasrv` returns for the same canonical cell key.
	want := strings.ToLower(*exp)
	if *faults {
		want = "faultsweep"
	}
	ran := false
	for _, id := range indra.Experiments() {
		if want != "all" && want != id {
			continue
		}
		ran = true
		out, err := indra.RunExperiment(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "indrabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "indrabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if suite != nil {
		if err := suite.WriteDir(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "indrabench: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d cells written to %s\n", suite.Len(), *metrics)
	}

	if resumer != nil {
		st := resumer.Stats()
		fmt.Fprintf(os.Stderr, "resume: %d run(s) continued from progress snapshots, %d snapshot(s) written\n",
			st.Resumed, st.Saved)
	}

	// The runner's timing summary: cells executed, wall time,
	// aggregate cell time, effective parallelism (cells in flight on
	// average). With -workers 1 it reads ~1.0x; the output above is
	// identical either way.
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "runner: %s, %d worker(s)\n", meter.Stats(), w)
}
