package main

import (
	"fmt"
	"os"

	"indra"
	"indra/internal/perf"
)

// runPerfCheck is the -perfcheck mode: measure the standard performance
// suite, write the report to outPath (BENCH_pr.json), and either gate
// against the committed baseline's perf section or — with -update-bench
// — rewrite that section in place (the sim section is owned by
// TestBenchBaseline and preserved). Returns the process exit code.
func runPerfCheck(outPath, baselinePath string, update bool, th perf.Thresholds) int {
	rep, err := perf.RunAll(indra.PerfSuite(), func(name string) {
		fmt.Fprintf(os.Stderr, "perfcheck: measuring %s\n", name)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
		return 1
	}
	if err := (&perf.File{Perf: rep}).WriteFile(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: write %s: %v\n", outPath, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "perfcheck: report written to %s\n", outPath)

	if update {
		doc, err := perf.ReadFile(baselinePath)
		if err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
				return 1
			}
			doc = &perf.File{}
		}
		doc.Perf = rep
		if err := doc.WriteFile(baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "perfcheck: write %s: %v\n", baselinePath, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "perfcheck: baseline perf section updated in %s\n", baselinePath)
		fmt.Print(perf.FormatTable(rep, nil))
		return 0
	}

	doc, err := perf.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: no baseline %s (create with -perfcheck -update-bench): %v\n", baselinePath, err)
		return 1
	}
	if len(doc.Perf) == 0 {
		fmt.Fprintf(os.Stderr, "perfcheck: %s has no perf section (create with -perfcheck -update-bench)\n", baselinePath)
		return 1
	}
	fmt.Print(perf.FormatTable(rep, doc.Perf))
	regs := perf.Compare(doc.Perf, rep, th)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "perfcheck: %d regression(s) against %s (thresholds: ns/op +%.0f%%, allocs/op +%.0f%%):\n",
			len(regs), baselinePath, th.NsPct*100, th.AllocsPct*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  FAIL %s\n", r)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "perfcheck: ok (%d cells within thresholds of %s)\n", len(rep), baselinePath)
	return 0
}
