package indra

import (
	"testing"

	"indra/internal/attack"
)

// TestSmokeBasicService boots the default platform and serves a small
// legitimate request stream end to end.
func TestSmokeBasicService(t *testing.T) {
	run, err := RunService("bind", Options{Requests: 3})
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	if run.Summary.Served != 3 {
		t.Fatalf("served %d of 3 requests: %+v", run.Summary.Served, run.Summary)
	}
	if got := len(run.Violations()); got != 0 {
		t.Fatalf("unexpected violations on legit traffic: %v", run.Violations())
	}
	if run.Summary.MeanRT == 0 {
		t.Fatal("zero response time")
	}
	t.Logf("instret=%d cycles=%d meanRT=%.0f", run.Result.Instret, run.Result.Cycles, run.Summary.MeanRT)
}

// TestSmokeAttackRecovery injects a stack smash between legit requests
// and checks detection plus continued service.
func TestSmokeAttackRecovery(t *testing.T) {
	run, err := RunService("bind", Options{Requests: 4, Attacks: []attack.Kind{attack.StackSmash}})
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	if len(run.Violations()) == 0 {
		t.Fatal("stack smash was not detected")
	}
	if run.Summary.Served != 4 {
		t.Fatalf("legit requests served = %d, want 4 (summary %+v)", run.Summary.Served, run.Summary)
	}
	if run.Summary.Aborted != 1 {
		t.Fatalf("aborted = %d, want 1", run.Summary.Aborted)
	}
	if run.Recovery().MicroRecoveries == 0 {
		t.Fatal("no micro recovery recorded")
	}
}

// TestPaperScaleSmoke runs one service at the paper's full request
// length (scale 10) to confirm the calibrated presets extrapolate.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run is not short")
	}
	run, err := RunService("bind", Options{Requests: 2, Scale: 10})
	if err != nil {
		t.Fatal(err)
	}
	if run.Summary.Served != 2 {
		t.Fatalf("served %+v", run.Summary)
	}
	per := float64(run.Chip.Core(0).Stats().Instret) / 2
	// The paper's bind interval is ~150k instructions.
	if per < 80_000 || per > 400_000 {
		t.Fatalf("paper-scale bind interval %.0f", per)
	}
}
