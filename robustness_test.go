package indra

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"indra/internal/chip"
	"indra/internal/netsim"
	"indra/internal/workload"
)

// TestDeterministicSimulation: identical seeds must produce identical
// cycle counts, response times and monitor statistics — the whole
// reproduction depends on it.
func TestDeterministicSimulation(t *testing.T) {
	run1, err := RunService("imap", Options{Requests: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	run2, err := RunService("imap", Options{Requests: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if run1.Result.Cycles != run2.Result.Cycles || run1.Result.Instret != run2.Result.Instret {
		t.Fatalf("nondeterministic: %+v vs %+v", run1.Result, run2.Result)
	}
	if run1.Summary.TotalRT != run2.Summary.TotalRT {
		t.Fatalf("response times diverge: %d vs %d", run1.Summary.TotalRT, run2.Summary.TotalRT)
	}
	s1, s2 := run1.Chip.Core(0).Stats(), run2.Chip.Core(0).Stats()
	if s1 != s2 {
		t.Fatalf("core stats diverge:\n%+v\n%+v", s1, s2)
	}
}

// TestNoFalsePositives is the Section 3.2.4 claim: behaviour-based
// inspection "rarely has false positives" — on well-formed traffic it
// has none, across every service, over a longer stream.
func TestNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("long stream is not short")
	}
	for _, name := range workload.Names() {
		run, err := RunService(name, Options{Requests: 12, Seed: 77})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(run.Violations()) != 0 {
			t.Errorf("%s: false positives on legit traffic: %v", name, run.Violations())
		}
		if run.Summary.Served != 12 {
			t.Errorf("%s: served %d/12", name, run.Summary.Served)
		}
	}
}

// TestRandomPayloadRobustness fuzzes the services with fully random
// request bytes. Random input may legitimately crash or hang the
// service (that is what the DoS handler models, and random magic can
// in principle appear) — but the platform must never wedge: every
// request ends Served or Aborted, detections recover, and the run
// terminates.
func TestRandomPayloadRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep is not short")
	}
	rng := rand.New(rand.NewSource(42))
	for _, name := range []string{"bind", "nfs"} {
		params := workload.MustByName(name)
		prog, err := params.BuildProgram()
		if err != nil {
			t.Fatal(err)
		}
		var reqs []netsim.Request
		for i := 0; i < 25; i++ {
			n := 8 + rng.Intn(600)
			p := make([]byte, n)
			rng.Read(p)
			// Cap the declared inline length so the random stream tests
			// parser robustness rather than guaranteed smashing — the
			// overflow path has its own dedicated tests. Every ~5th
			// request keeps its random length (may overflow: fine).
			if i%5 != 0 {
				binary.LittleEndian.PutUint16(p[workload.OffInlineLen:], uint16(rng.Intn(workload.VulnBufBytes)))
			}
			reqs = append(reqs, netsim.Request{Payload: p, Label: "fuzz"})
		}
		cfg := chip.DefaultConfig()
		cfg.Recovery.InstrBudget = 1_000_000
		ch, err := chip.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		port := netsim.NewPort(reqs)
		if _, err := ch.LaunchService(0, name, prog, port); err != nil {
			t.Fatal(err)
		}
		res, err := ch.Run(600_000_000)
		if err != nil {
			t.Fatalf("%s: run wedged: %v", name, err)
		}
		if !res.Halted {
			t.Fatalf("%s: request stream not drained", name)
		}
		sum := port.Summarize()
		if sum.Served+sum.Aborted != sum.Total {
			t.Fatalf("%s: unresolved requests: %+v", name, sum)
		}
		t.Logf("%s: %d served, %d aborted, %d detections, %d recoveries",
			name, sum.Served, sum.Aborted, len(ch.Violations()),
			ch.Recovery().Stats().MicroRecoveries+ch.Recovery().Stats().MacroRecoveries)
	}
}

// TestSeedSensitivity: different request seeds must actually change the
// dynamic behaviour (guards against the generator collapsing).
func TestSeedSensitivity(t *testing.T) {
	a, err := RunService("ftpd", Options{Requests: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunService("ftpd", Options{Requests: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Instret == b.Result.Instret {
		t.Fatal("different seeds produced identical instruction counts")
	}
}

// TestMonitoringIsFunctionallyTransparent: monitoring and delta backup
// are pure overhead — the responses a client receives must be
// byte-identical whether they are on or off. (The paper's "executes
// all software in the native mode": no emulation, no semantic change.)
func TestMonitoringIsFunctionallyTransparent(t *testing.T) {
	responses := func(monitoring bool, scheme chip.SchemeKind) [][]byte {
		cfg := chip.DefaultConfig()
		cfg.Monitoring = monitoring
		cfg.Scheme = scheme
		run, err := RunService("httpd", Options{Chip: &cfg, Requests: 5, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for _, r := range run.Port.Records() {
			out = append(out, r.Response)
		}
		return out
	}
	ref := responses(false, chip.SchemeNone)
	for _, variant := range []struct {
		mon    bool
		scheme chip.SchemeKind
	}{
		{true, chip.SchemeNone},
		{true, chip.SchemeDelta},
		{false, chip.SchemeSoftwarePageCopy},
		{true, chip.SchemeUpdateLog},
	} {
		got := responses(variant.mon, variant.scheme)
		if len(got) != len(ref) {
			t.Fatalf("variant %+v: response count %d != %d", variant, len(got), len(ref))
		}
		for i := range ref {
			if string(got[i]) != string(ref[i]) {
				t.Fatalf("variant %+v: response %d differs", variant, i)
			}
		}
	}
}
