package indra

import (
	"os"
	"path/filepath"
	"testing"

	"indra/internal/isa/difftest"
)

// TestDifferentialBlockVsScalar replays every golden experiment cell
// under the block-vs-scalar differential harness: each cell's chip
// runs on the basic-block engine while a scalar twin revived from the
// same snapshot replays every segment, with architectural state
// compared at each boundary (internal/isa/difftest). The cell outputs
// must still match the committed goldens byte for byte, proving the
// harness itself is observationally invisible.
//
// On a divergence the harness error names the first mismatching state
// and, when DIFFTEST_ARTIFACT_DIR is set (the CI differential job
// sets it), writes the decoded block and a scalar reference trace for
// post-mortem.
func TestDifferentialBlockVsScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replay of the full golden suite is not short")
	}
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (generate with TestGoldenDeterminism -update-golden): %v", err)
			}
			o := goldenOpts
			o.Workers = 1 // cells parallelize across subtests instead
			o.RunLoop = difftest.Loop(difftest.Config{Name: tc.name})
			got, err := tc.run(o)
			if err != nil {
				t.Fatalf("differential run: %v", err)
			}
			if got != string(want) {
				t.Errorf("differential run output diverges from golden %s.golden\n--- differential ---\n%s--- golden ---\n%s",
					tc.name, got, want)
			}
		})
	}
}
